package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mystore/internal/bson"
	"mystore/internal/trace"
)

// Multiplexed TCP mode: many in-flight calls share one connection per peer
// instead of checking a connection out of the pool for the full round trip.
// A client opens the stream with the 4-byte magic "MUX1" (never a valid
// legacy length prefix, whose first byte is ≤ 0x03 for frames under the
// 64 MiB limit), then both directions carry frames of
//
//	payload length  uint32 (big endian)
//	request id      uint64 (big endian)
//	payload         BSON, same request/response documents as legacy mode
//
// Requests pipeline: writers append frames under a write mutex without
// waiting for responses, a single demux reader routes each response to its
// caller by request id, and per-call deadlines are enforced by the waiting
// caller itself (a timed-out call abandons its id; a late response to an
// abandoned id is dropped). The server handles each request in its own
// goroutine, so one slow handler does not head-of-line-block the stream.

const (
	muxMagic      = "MUX1"
	muxHeaderSize = 4 + 8
)

// framePool recycles frame build buffers on the RPC hot path so that every
// call does not allocate a fresh header+payload slice. Buffers are pooled as
// *[]byte (the slice header itself would escape if pooled by value) and grow
// to fit the largest frames they carry.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

var muxZeroHeader [muxHeaderSize]byte

// appendMuxFrame appends one complete mux frame (header + BSON payload) for
// doc to buf and returns the extended slice. The payload is encoded directly
// into the buffer via bson.AppendTo — no intermediate []byte — and the
// header is patched in afterwards, once the payload length is known. With a
// large enough buf the append is allocation-free, which the transport's
// AllocsPerRun test pins.
func appendMuxFrame(buf []byte, rid uint64, doc bson.D) ([]byte, error) {
	start := len(buf)
	buf = append(buf, muxZeroHeader[:]...)
	out, err := bson.AppendTo(buf, doc)
	if err != nil {
		return buf[:start], err
	}
	payload := len(out) - start - muxHeaderSize
	binary.BigEndian.PutUint32(out[start:start+4], uint32(payload))
	binary.BigEndian.PutUint64(out[start+4:start+12], rid)
	return out, nil
}

type muxResult struct {
	payload []byte
	err     error
}

// muxConn is one multiplexed client connection to a peer.
type muxConn struct {
	conn net.Conn

	wmu sync.Mutex // serializes request writes (pipelining)

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan muxResult
	err     error // set once the connection is broken
}

func newMuxConn(conn net.Conn) *muxConn {
	return &muxConn{conn: conn, pending: make(map[uint64]chan muxResult)}
}

func (mc *muxConn) broken() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.err != nil
}

// fail marks the connection broken, closes it, and delivers err to every
// pending call. Idempotent; the first error wins.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.err != nil {
		mc.mu.Unlock()
		return
	}
	mc.err = err
	pending := mc.pending
	mc.pending = make(map[uint64]chan muxResult)
	mc.mu.Unlock()
	mc.conn.Close()
	for _, ch := range pending {
		ch <- muxResult{err: err}
	}
}

// readLoop is the demux reader: it routes each response frame to the caller
// registered under its request id.
func (mc *muxConn) readLoop() {
	for {
		payload, rid, err := readMuxFrame(mc.conn)
		if err != nil {
			mc.fail(err)
			return
		}
		mc.mu.Lock()
		ch, ok := mc.pending[rid]
		if ok {
			delete(mc.pending, rid)
		}
		mc.mu.Unlock()
		if ok {
			ch <- muxResult{payload: payload}
		}
		// else: the caller gave up (deadline) — drop the late response.
	}
}

// call encodes req into a pooled frame buffer, sends it, and waits for its
// response or the deadline.
func (mc *muxConn) call(ctx context.Context, deadline time.Time, req bson.D) ([]byte, error) {
	mc.mu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
	mc.nextID++
	rid := mc.nextID
	ch := make(chan muxResult, 1)
	mc.pending[rid] = ch
	mc.mu.Unlock()

	bufp := framePool.Get().(*[]byte)
	frame, err := appendMuxFrame((*bufp)[:0], rid, req)
	if err != nil {
		framePool.Put(bufp)
		mc.unregister(rid)
		return nil, err
	}
	mc.wmu.Lock()
	mc.conn.SetWriteDeadline(deadline) //nolint:errcheck
	_, err = mc.conn.Write(frame)
	mc.wmu.Unlock()
	*bufp = frame[:0]
	framePool.Put(bufp)
	if err != nil {
		mc.unregister(rid)
		// A partial write desynchronizes the stream for every user of the
		// connection; kill it.
		mc.fail(err)
		return nil, err
	}

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.payload, res.err
	case <-ctx.Done():
		mc.unregister(rid)
		return nil, fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	case <-timer.C:
		mc.unregister(rid)
		return nil, fmt.Errorf("%w: call deadline exceeded", ErrTimeout)
	}
}

func (mc *muxConn) unregister(rid uint64) {
	mc.mu.Lock()
	delete(mc.pending, rid)
	mc.mu.Unlock()
}

func readMuxFrame(r io.Reader) ([]byte, uint64, error) {
	var hdr [muxHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	rid := binary.BigEndian.Uint64(hdr[4:12])
	if n > maxFrame {
		return nil, 0, fmt.Errorf("transport: mux frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, err
	}
	return payload, rid, nil
}

// --- client side ---

// getMux returns the live multiplexed connection to the peer, dialing one if
// needed. Dial races resolve in favour of the connection already installed.
func (t *TCPTransport) getMux(to string) (*muxConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if mc, ok := t.muxConns[to]; ok && !mc.broken() {
		t.mu.Unlock()
		return mc, nil
	}
	t.mu.Unlock()

	conn, err := net.DialTimeout("tcp", to, t.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write([]byte(muxMagic)); err != nil {
		conn.Close()
		return nil, err
	}
	mc := newMuxConn(conn)

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		mc.fail(ErrClosed)
		return nil, ErrClosed
	}
	if cur, ok := t.muxConns[to]; ok && !cur.broken() {
		t.mu.Unlock()
		mc.fail(errors.New("transport: lost mux dial race"))
		return cur, nil
	}
	t.muxConns[to] = mc
	t.mu.Unlock()
	go mc.readLoop()
	return mc, nil
}

// dropMux forgets a broken connection so the next call redials.
func (t *TCPTransport) dropMux(to string, mc *muxConn) {
	t.mu.Lock()
	if cur, ok := t.muxConns[to]; ok && cur == mc {
		delete(t.muxConns, to)
	}
	t.mu.Unlock()
}

func (t *TCPTransport) callMux(ctx context.Context, to string, msg Message, deadline time.Time) (bson.D, error) {
	mc, err := t.getMux(to)
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, to, err)
	}
	payload, err := mc.call(ctx, deadline, requestDoc(ctx, t.addr, msg, deadline))
	if err != nil {
		if !errors.Is(err, ErrTimeout) {
			t.dropMux(to, mc)
		}
		switch {
		case errors.Is(err, ErrTimeout), errors.Is(err, ErrClosed):
			return nil, err
		default:
			return nil, classifyNetErr(err)
		}
	}
	resp, err := bson.Unmarshal(payload)
	if err != nil {
		return nil, err
	}
	if msg, found := resp.Get("err"); found {
		s, _ := msg.(string)
		return nil, &RemoteError{Msg: s}
	}
	if b, found := resp.Get("body"); found {
		if body, isDoc := b.(bson.D); isDoc {
			return body, nil
		}
	}
	return nil, nil
}

// --- server side ---

// serveMux serves one multiplexed connection: each request frame is handled
// in its own goroutine and responses are written back under a write mutex in
// completion order, matched to callers by request id.
func (t *TCPTransport) serveMux(conn net.Conn) {
	var wmu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		payload, rid, err := readMuxFrame(conn)
		if err != nil {
			return
		}
		wg.Add(1)
		go func(rid uint64, payload []byte) {
			defer wg.Done()
			resp := t.handleRequest(payload)
			bufp := framePool.Get().(*[]byte)
			frame, err := appendMuxFrame((*bufp)[:0], rid, resp)
			if err != nil {
				framePool.Put(bufp)
				return
			}
			wmu.Lock()
			conn.Write(frame) //nolint:errcheck // conn torn down by reader
			wmu.Unlock()
			*bufp = frame[:0]
			framePool.Put(bufp)
		}(rid, payload)
	}
}

// handleRequest decodes one request payload and runs the handler, producing
// the response document (shared by the legacy and mux server loops). A
// propagated deadline ("dl") bounds the handler's context; a request whose
// deadline already passed is dropped without invoking the handler at all —
// the caller has given up, so the work would be wasted.
func (t *TCPTransport) handleRequest(payload []byte) bson.D {
	req, err := bson.Unmarshal(payload)
	if err != nil {
		return bson.D{{Key: "err", Value: "transport: malformed request"}}
	}
	t.mu.Lock()
	h := t.handler
	t.mu.Unlock()
	if h == nil {
		return bson.D{{Key: "err", Value: ErrNoHandler.Error()}}
	}
	ctx := context.Background()
	if v, ok := req.Get("dl"); ok {
		if nanos, isInt := v.(int64); isInt && nanos > 0 {
			deadline := time.Unix(0, nanos)
			if !time.Now().Before(deadline) {
				t.deadlineDropped.Add(1)
				return bson.D{{Key: "err", Value: deadlineExpiredMsg}}
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, deadline)
			defer cancel()
		}
	}
	// Re-join the caller's trace against the node-local collector so server
	// spans carry the originating trace id ("tr") parented to the caller's
	// span ("sp").
	if c := t.tracer.Load(); c != nil {
		if v, ok := req.Get("tr"); ok {
			if id, isInt := v.(int64); isInt && id != 0 {
				parent := int64(0)
				if pv, ok := req.Get("sp"); ok {
					parent, _ = pv.(int64)
				}
				ctx = trace.Join(ctx, c, trace.ID(id), uint64(parent))
			}
		}
	}
	msg := Message{
		Type: req.StringOr("type", ""),
		From: req.StringOr("from", ""),
	}
	if b, ok := req.Get("body"); ok {
		if body, isDoc := b.(bson.D); isDoc {
			msg.Body = body
		}
	}
	body, herr := h(ctx, msg)
	if herr != nil {
		return bson.D{{Key: "err", Value: herr.Error()}}
	}
	return bson.D{{Key: "body", Value: body}}
}
