package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mystore/internal/bson"
)

func echoHandler(ctx context.Context, msg Message) (bson.D, error) {
	return bson.D{
		{Key: "echo", Value: msg.Type},
		{Key: "from", Value: msg.From},
	}, nil
}

func TestMemCallRoundTrip(t *testing.T) {
	net := NewMemNetwork()
	a, err := net.Endpoint("node-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("node-b")
	if err != nil {
		t.Fatal(err)
	}
	b.SetHandler(echoHandler)
	resp, err := a.Call(context.Background(), "node-b", Message{Type: "ping"})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.StringOr("echo", "") != "ping" || resp.StringOr("from", "") != "node-a" {
		t.Fatalf("resp = %s", resp)
	}
}

func TestMemDuplicateAddress(t *testing.T) {
	net := NewMemNetwork()
	if _, err := net.Endpoint("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("x"); err == nil {
		t.Fatal("duplicate address accepted")
	}
}

func TestMemUnknownDestination(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	_, err := a.Call(context.Background(), "ghost", Message{Type: "ping"})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestMemNoHandler(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	net.Endpoint("b") //nolint:errcheck
	_, err := a.Call(context.Background(), "b", Message{Type: "ping"})
	if !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestMemRemoteError(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.SetHandler(func(context.Context, Message) (bson.D, error) {
		return nil, errors.New("handler exploded")
	})
	_, err := a.Call(context.Background(), "b", Message{Type: "x"})
	if !IsRemote(err) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if errors.Is(err, ErrUnreachable) {
		t.Fatal("remote error misclassified as unreachable")
	}
}

func TestMemPartitionAndHeal(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.SetHandler(echoHandler)
	a.SetHandler(echoHandler)
	net.Partition("a", "b")
	if _, err := a.Call(context.Background(), "b", Message{Type: "x"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned call err = %v", err)
	}
	if _, err := b.Call(context.Background(), "a", Message{Type: "x"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partition must be bidirectional; err = %v", err)
	}
	net.Heal("a", "b")
	if _, err := a.Call(context.Background(), "b", Message{Type: "x"}); err != nil {
		t.Fatalf("healed call err = %v", err)
	}
}

func TestMemCloseAndReopen(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.SetHandler(echoHandler)
	b.Close()
	if !b.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if _, err := a.Call(context.Background(), "b", Message{Type: "x"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to closed endpoint err = %v", err)
	}
	// The closed endpoint cannot originate calls either.
	if _, err := b.Call(context.Background(), "a", Message{Type: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("call from closed endpoint err = %v", err)
	}
	b.Reopen()
	if _, err := a.Call(context.Background(), "b", Message{Type: "x"}); err != nil {
		t.Fatalf("call after Reopen err = %v", err)
	}
}

func TestMemFaultHook(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.SetHandler(echoHandler)
	var calls []string
	net.SetFault(func(from, to, msgType string) error {
		calls = append(calls, fmt.Sprintf("%s->%s:%s", from, to, msgType))
		if msgType == "doomed" {
			return errors.New("injected")
		}
		return nil
	})
	if _, err := a.Call(context.Background(), "b", Message{Type: "fine"}); err != nil {
		t.Fatalf("unfaulted call: %v", err)
	}
	if _, err := a.Call(context.Background(), "b", Message{Type: "doomed"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("faulted call err = %v", err)
	}
	if len(calls) != 2 || calls[0] != "a->b:fine" {
		t.Fatalf("fault hook calls = %v", calls)
	}
	net.SetFault(nil)
	if _, err := a.Call(context.Background(), "b", Message{Type: "doomed"}); err != nil {
		t.Fatalf("after clearing fault: %v", err)
	}
}

func TestMemLatencyAppliedAndCancellable(t *testing.T) {
	net := NewMemNetwork()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	b.SetHandler(echoHandler)
	net.SetLatencyModel(ConstantLatency(30 * time.Millisecond))
	start := time.Now()
	if _, err := a.Call(context.Background(), "b", Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 55*time.Millisecond {
		t.Fatalf("round trip = %v, want >= 2x30ms", rtt)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, "b", Message{Type: "x"}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("timed-out call err = %v", err)
	}
}

func TestLANLatencyScalesWithSize(t *testing.T) {
	model := LANLatency(time.Millisecond, 1e6) // 1 MB/s
	small := model("a", "b", 1000)
	big := model("a", "b", 100000)
	if big <= small {
		t.Fatalf("latency(100KB)=%v should exceed latency(1KB)=%v", big, small)
	}
	if zero := LANLatency(time.Millisecond, 0)("a", "b", 5000); zero != time.Millisecond {
		t.Fatalf("zero-bandwidth model = %v, want base only", zero)
	}
}

func TestMemConcurrentCalls(t *testing.T) {
	net := NewMemNetwork()
	server, _ := net.Endpoint("server")
	var count int
	var mu sync.Mutex
	server.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
		mu.Lock()
		count++
		mu.Unlock()
		return bson.D{{Key: "n", Value: int64(1)}}, nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep, err := net.Endpoint(fmt.Sprintf("client-%d", w))
			if err != nil {
				t.Errorf("endpoint: %v", err)
				return
			}
			for i := 0; i < 100; i++ {
				if _, err := ep.Call(context.Background(), "server", Message{Type: "inc"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if count != 800 {
		t.Fatalf("handled %d calls, want 800", count)
	}
}

// --- TCP transport ---

func tcpPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	a, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
		v, _ := msg.Body.Get("n")
		return bson.D{{Key: "n2", Value: v.(int64) * 2}}, nil
	})
	resp, err := a.Call(context.Background(), b.Addr(), Message{
		Type: "double",
		Body: bson.D{{Key: "n", Value: int64(21)}},
	})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if v, _ := resp.Get("n2"); v != int64(42) {
		t.Fatalf("resp = %s", resp)
	}
}

func TestTCPRemoteError(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(func(context.Context, Message) (bson.D, error) {
		return nil, errors.New("kaboom")
	})
	_, err := a.Call(context.Background(), b.Addr(), Message{Type: "x"})
	if !IsRemote(err) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestTCPNoHandler(t *testing.T) {
	a, b := tcpPair(t)
	_, err := a.Call(context.Background(), b.Addr(), Message{Type: "x"})
	if !IsRemote(err) {
		t.Fatalf("err = %v, want remote no-handler error", err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	a, _ := tcpPair(t)
	_, err := a.Call(context.Background(), "127.0.0.1:1", Message{Type: "x"})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPPoolReuse(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(echoHandler)
	for i := 0; i < 50; i++ {
		if _, err := a.Call(context.Background(), b.Addr(), Message{Type: "seq"}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestTCPConcurrent(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(echoHandler)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := a.Call(context.Background(), b.Addr(), Message{Type: "c"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPClosedTransport(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(echoHandler)
	a.Close()
	if _, err := a.Call(context.Background(), b.Addr(), Message{Type: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Calls to a closed server fail as unreachable.
	b.Close()
	c, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), b.Addr(), Message{Type: "x"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to closed server err = %v", err)
	}
}

func TestTCPCallTimeout(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
		time.Sleep(200 * time.Millisecond)
		return bson.D{}, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := a.Call(ctx, b.Addr(), Message{Type: "slow"})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func BenchmarkMemCall(b *testing.B) {
	net := NewMemNetwork()
	client, _ := net.Endpoint("c")
	server, _ := net.Endpoint("s")
	server.SetHandler(echoHandler)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, "s", Message{Type: "ping"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPCall(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.SetHandler(echoHandler)
	cli, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, srv.Addr(), Message{Type: "ping"}); err != nil {
			b.Fatal(err)
		}
	}
}
