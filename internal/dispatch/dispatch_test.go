package dispatch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoRunsRequests(t *testing.T) {
	p := NewPool(4, 64) // capacity must absorb all 100 concurrent submissions
	defer p.Close()
	var count atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), func(context.Context) error {
				count.Add(1)
				return nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if count.Load() != 100 {
		t.Fatalf("ran %d requests, want 100", count.Load())
	}
	st := p.Stats()
	if st.Dispatched != 100 || st.Completed != 100 || st.Failed != 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestDoPropagatesErrors(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()
	boom := errors.New("boom")
	if err := p.Do(context.Background(), func(context.Context) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if p.Stats().Failed != 1 {
		t.Fatalf("Failed = %d", p.Stats().Failed)
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	p := NewPool(4, 64)
	defer p.Close()
	// Sequential submissions land on successive workers; with 8
	// submissions each of 4 workers runs exactly 2.
	var mu sync.Mutex
	perWorker := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		idx := i % 4
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(context.Context) error { //nolint:errcheck
				mu.Lock()
				perWorker[idx]++
				mu.Unlock()
				return nil
			})
		}()
		wg.Wait() // serialize to make round-robin deterministic
		wg = sync.WaitGroup{}
	}
	if len(perWorker) != 4 {
		t.Fatalf("work landed on %d distinct workers, want 4", len(perWorker))
	}
}

func TestWorkersBoundConcurrency(t *testing.T) {
	p := NewPool(2, 64)
	defer p.Close()
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(context.Context) error { //nolint:errcheck
				cur := inFlight.Add(1)
				for {
					prev := maxSeen.Load()
					if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				inFlight.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got > 2 {
		t.Fatalf("max concurrent executions = %d, want <= 2 workers", got)
	}
}

func TestQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error { //nolint:errcheck
		close(started)
		<-block
		return nil
	})
	<-started
	// Fill the single queue slot.
	go p.Do(context.Background(), func(context.Context) error { return nil }) //nolint:errcheck
	time.Sleep(10 * time.Millisecond)
	// Now the queue is full: an immediate ErrQueueFull.
	err := p.Do(context.Background(), func(context.Context) error { return nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(block)
}

func TestDoAfterClose(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestContextCancellation(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error { //nolint:errcheck
		close(started)
		<-block
		return nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := p.Do(ctx, func(context.Context) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestDefaults(t *testing.T) {
	p := NewPool(0, 0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", p.Workers())
	}
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestQueuedRequestShedAfterDeadline(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error { //nolint:errcheck
		close(started)
		<-block
		return nil
	})
	<-started

	// Queue a request whose deadline will expire while the worker is still
	// blocked, and read its true outcome from the done channel via a second
	// goroutine that outlives the caller's deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var ran atomic.Bool
	outcome := make(chan error, 1)
	go func() {
		outcome <- p.Do(ctx, func(context.Context) error {
			ran.Store(true)
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond) // let the deadline lapse in-queue
	close(block)                      // unblock the worker
	if err := <-outcome; !errors.Is(err, ErrShed) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrShed or DeadlineExceeded", err)
	}
	deadline := time.Now().Add(time.Second)
	for p.Stats().Shed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ran.Load() {
		t.Fatal("expired request must not run")
	}
	if p.Stats().Shed != 1 {
		t.Fatalf("Shed = %d, want 1", p.Stats().Shed)
	}
}
