// Package dispatch implements the paper's distribution module (§4): the
// Nginx + spawn-fcgi analogue. Incoming requests are distributed
// round-robin across a pool of logical worker processes, each of which
// executes requests sequentially — modelling the Python logic processes the
// paper runs behind spawn-fcgi. The pool bounds concurrency exactly the way
// a fixed process count does, which is what produces the saturation plateau
// in Figs 13-14.
package dispatch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"mystore/internal/metrics"
	"mystore/internal/trace"
)

// Request is one unit of work: a function executed on a logical worker.
type Request func(ctx context.Context) error

// Pool is a round-robin dispatcher over n logical workers.
type Pool struct {
	// closeMu guards the race between Do sending on a queue and Close
	// closing it: Do holds it shared for the send, Close exclusively.
	closeMu sync.RWMutex
	closed  bool

	queues []chan job
	wg     sync.WaitGroup
	next   atomic.Uint64
	depth  int

	dispatched atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	shed       atomic.Int64
	queueWait  *metrics.BucketedHistogram
}

type job struct {
	ctx      context.Context
	req      Request
	done     chan error
	span     *trace.Span // "dispatch.queue", ended when a worker dequeues
	enqueued time.Time
}

// ErrClosed is returned when dispatching to a closed pool.
var ErrClosed = errors.New("dispatch: pool is closed")

// ErrQueueFull is returned when a worker's queue cannot accept more work.
var ErrQueueFull = errors.New("dispatch: worker queue full")

// ErrShed is returned for a queued request whose context expired before a
// worker picked it up: its caller has already given up, so running it would
// only add load exactly when the pool is saturated (load shedding).
var ErrShed = errors.New("dispatch: request shed, deadline expired in queue")

// NewPool starts n logical workers, each with queueDepth waiting slots
// (zero means 64).
func NewPool(n, queueDepth int) *Pool {
	if n <= 0 {
		n = 1
	}
	if queueDepth <= 0 {
		queueDepth = 64
	}
	p := &Pool{depth: queueDepth, queueWait: metrics.NewBucketedHistogram(nil)}
	for i := 0; i < n; i++ {
		q := make(chan job, queueDepth)
		p.queues = append(p.queues, q)
		p.wg.Add(1)
		go p.worker(q)
	}
	return p
}

func (p *Pool) worker(q chan job) {
	defer p.wg.Done()
	for j := range q {
		p.queueWait.ObserveDuration(time.Since(j.enqueued))
		var err error
		select {
		case <-j.ctx.Done():
			// Shed: the request sat in the backlog past its deadline.
			p.shed.Add(1)
			err = ErrShed
		default:
			j.span.End(nil)
			err = j.req(j.ctx)
		}
		if errors.Is(err, ErrShed) {
			j.span.End(err)
		}
		if err != nil {
			p.failed.Add(1)
		}
		p.completed.Add(1)
		j.done <- err
	}
}

// Do dispatches req to the next worker round-robin and waits for it to
// complete. If that worker's backlog is full it falls back to any worker
// with a free slot, so a single slow worker doesn't reject requests while
// its neighbours sit idle. It returns the request's error, ErrClosed after
// Close, or ErrQueueFull when every backlog is full (the overload signal a
// saturated fcgi pool gives).
func (p *Pool) Do(ctx context.Context, req Request) error {
	// The queue span measures backlog wait: opened here, ended by the worker
	// at dequeue. The request itself runs under the span's context so its
	// own spans nest beneath the queue wait.
	ctx, span := trace.Start(ctx, "dispatch.queue")
	j := job{ctx: ctx, req: req, done: make(chan error, 1), span: span, enqueued: time.Now()}
	p.closeMu.RLock()
	if p.closed {
		p.closeMu.RUnlock()
		return ErrClosed
	}
	idx := int(p.next.Add(1)-1) % len(p.queues)
	var enqueued bool
	for off := 0; off < len(p.queues); off++ {
		select {
		case p.queues[(idx+off)%len(p.queues)] <- j:
			enqueued = true
			p.dispatched.Add(1)
		default:
			continue
		}
		break
	}
	p.closeMu.RUnlock()
	if !enqueued {
		span.End(ErrQueueFull)
		return ErrQueueFull
	}
	select {
	case err := <-j.done:
		return err
	case <-ctx.Done():
		// The worker will still run the job; the caller stops waiting.
		return ctx.Err()
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.queues) }

// QueueWait exposes the backlog-wait histogram (enqueue to worker pickup)
// for registry registration.
func (p *Pool) QueueWait() *metrics.BucketedHistogram { return p.queueWait }

// Stats reports dispatch counters. Shed counts queued requests dropped
// because their deadline expired before a worker reached them.
type Stats struct {
	Dispatched, Completed, Failed, Shed int64
}

// Stats returns a snapshot.
func (p *Pool) Stats() Stats {
	return Stats{
		Dispatched: p.dispatched.Load(),
		Completed:  p.completed.Load(),
		Failed:     p.failed.Load(),
		Shed:       p.shed.Load(),
	}
}

// Close drains and stops the workers. Pending jobs complete.
func (p *Pool) Close() {
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return
	}
	p.closed = true
	for _, q := range p.queues {
		close(q)
	}
	p.closeMu.Unlock()
	p.wg.Wait()
}
