// Package cache implements MyStore's cache module (paper §4): an
// independent memory-cache tier of several servers, each an LRU store of
// {key: value} items, with client-side load balancing "based on the hash of
// resources' keys". Items read, inserted or updated recently are cached;
// the gateway consults the cache before the storage cluster and fills it on
// miss.
//
// Each Server is internally sharded across mutex-guarded segments keyed by
// key hash, so concurrent gateway workers do not serialize on one lock.
// LRU order is therefore exact per segment and approximate across the
// server as a whole — the standard memcached-style trade-off. Tests that
// need exact global LRU build a single-segment server with
// NewServerShards(capacity, 1).
package cache

import (
	"container/list"
	"sync"

	"mystore/internal/metrics"
	"mystore/internal/ring"
)

// DefaultShards is the segment count NewServer uses. Sixteen segments keep
// lock hold times short at gateway concurrency while staying cheap for
// small caches.
const DefaultShards = 16

// Server is one LRU cache server bounded by total value bytes, sharded
// across DefaultShards mutex-guarded segments.
type Server struct {
	shards []*shard

	hits, misses, evictions metrics.Counter
}

// shard is one independently locked LRU segment.
type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recently used
	items    map[string]*list.Element
}

type entry struct {
	key string
	val []byte
}

// NewServer returns a cache holding at most capacity bytes of values,
// sharded across DefaultShards segments.
func NewServer(capacity int64) *Server {
	return NewServerShards(capacity, DefaultShards)
}

// NewServerShards returns a cache with an explicit segment count. One
// segment gives the exact global LRU order of the unsharded design.
func NewServerShards(capacity int64, shards int) *Server {
	if capacity <= 0 {
		capacity = 64 << 20
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	per := capacity / int64(shards)
	if per < 1 {
		per = 1
	}
	s := &Server{}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, &shard{
			capacity: per,
			order:    list.New(),
			items:    make(map[string]*list.Element),
		})
	}
	return s
}

// shardFor maps key to its segment with FNV-1a. The tier above already
// places keys on servers with the Ketama hash; a different hash here keeps
// the two partitionings independent (the same hash mod servers then mod
// shards would leave most segments empty).
func (s *Server) shardFor(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return s.shards[h%uint64(len(s.shards))]
}

// Get returns the cached value and whether it was present, refreshing
// recency.
func (s *Server) Get(key string) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		s.misses.Inc()
		return nil, false
	}
	sh.order.MoveToFront(el)
	val := el.Value.(*entry).val
	out := make([]byte, len(val))
	copy(out, val)
	sh.mu.Unlock()
	s.hits.Inc()
	return out, true
}

// Set inserts or refreshes key, evicting LRU items from its segment to stay
// within the segment's capacity share. Values larger than one segment's
// share are not cached.
func (s *Server) Set(key string, val []byte) {
	sh := s.shardFor(key)
	size := int64(len(val))
	if size > sh.capacity {
		return
	}
	stored := make([]byte, len(val))
	copy(stored, val)
	var evicted int64
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		old := el.Value.(*entry)
		sh.used += size - int64(len(old.val))
		old.val = stored
		sh.order.MoveToFront(el)
	} else {
		el := sh.order.PushFront(&entry{key: key, val: stored})
		sh.items[key] = el
		sh.used += size
	}
	for sh.used > sh.capacity {
		oldest := sh.order.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		sh.order.Remove(oldest)
		delete(sh.items, e.key)
		sh.used -= int64(len(e.val))
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		s.evictions.Add(evicted)
	}
}

// Delete removes key if cached.
func (s *Server) Delete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*entry)
		sh.order.Remove(el)
		delete(sh.items, key)
		sh.used -= int64(len(e.val))
	}
}

// Len returns the number of cached items.
func (s *Server) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// UsedBytes returns the bytes of cached values.
func (s *Server) UsedBytes() int64 {
	var used int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		used += sh.used
		sh.mu.Unlock()
	}
	return used
}

// Shards returns the segment count (tests, stats).
func (s *Server) Shards() int { return len(s.shards) }

// Stats summarize server activity.
type Stats struct {
	Hits, Misses, Evictions int64
	Items                   int
	UsedBytes               int64
}

// Stats returns a snapshot.
func (s *Server) Stats() Stats {
	st := Stats{
		Hits:      s.hits.Value(),
		Misses:    s.misses.Value(),
		Evictions: s.evictions.Value(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Items += len(sh.items)
		st.UsedBytes += sh.used
		sh.mu.Unlock()
	}
	return st
}

// Tier is the client-side view of several cache servers: each key maps to
// one server by key hash, so servers hold disjoint partitions (paper: cache
// servers "are responsible for different partitions of data resources").
type Tier struct {
	servers []*Server
}

// NewTier builds a tier of n servers with the given per-server capacity.
func NewTier(n int, perServerCapacity int64) *Tier {
	if n <= 0 {
		n = 1
	}
	t := &Tier{}
	for i := 0; i < n; i++ {
		t.servers = append(t.servers, NewServer(perServerCapacity))
	}
	return t
}

// pick maps key to its server via the same Ketama hash the ring uses.
func (t *Tier) pick(key string) *Server {
	return t.servers[int(ring.Hash(key))%len(t.servers)]
}

// Get looks the key up on its server.
func (t *Tier) Get(key string) ([]byte, bool) { return t.pick(key).Get(key) }

// GetMany looks every key up on its server, returning the hits plus the
// miss set in first-seen order (duplicates collapsed). The gateway's batch
// endpoint consults the tier once, then fetches the whole miss set from the
// backend in a single batched round.
func (t *Tier) GetMany(keys []string) (found map[string][]byte, missing []string) {
	found = make(map[string][]byte, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		if v, ok := t.pick(k).Get(k); ok {
			found[k] = v
		} else {
			missing = append(missing, k)
		}
	}
	return found, missing
}

// Set stores the key on its server.
func (t *Tier) Set(key string, val []byte) { t.pick(key).Set(key, val) }

// Delete removes the key from its server.
func (t *Tier) Delete(key string) { t.pick(key).Delete(key) }

// Servers exposes the underlying servers (stats, tests).
func (t *Tier) Servers() []*Server { return t.servers }

// Stats aggregates across servers.
func (t *Tier) Stats() Stats {
	var agg Stats
	for _, s := range t.servers {
		st := s.Stats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Items += st.Items
		agg.UsedBytes += st.UsedBytes
	}
	return agg
}
