// Package cache implements MyStore's cache module (paper §4): an
// independent memory-cache tier of several servers, each an LRU store of
// {key: value} items, with client-side load balancing "based on the hash of
// resources' keys". Items read, inserted or updated recently are cached;
// the gateway consults the cache before the storage cluster and fills it on
// miss.
package cache

import (
	"container/list"
	"sync"

	"mystore/internal/ring"
)

// Server is one LRU cache server bounded by total value bytes.
type Server struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions int64
}

type entry struct {
	key string
	val []byte
}

// NewServer returns a cache holding at most capacity bytes of values.
func NewServer(capacity int64) *Server {
	if capacity <= 0 {
		capacity = 64 << 20
	}
	return &Server{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value and whether it was present, refreshing
// recency.
func (s *Server) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.order.MoveToFront(el)
	s.hits++
	val := el.Value.(*entry).val
	out := make([]byte, len(val))
	copy(out, val)
	return out, true
}

// Set inserts or refreshes key, evicting LRU items to stay within
// capacity. Values larger than the whole capacity are not cached.
func (s *Server) Set(key string, val []byte) {
	size := int64(len(val))
	if size > s.capacity {
		return
	}
	stored := make([]byte, len(val))
	copy(stored, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		old := el.Value.(*entry)
		s.used += size - int64(len(old.val))
		old.val = stored
		s.order.MoveToFront(el)
	} else {
		el := s.order.PushFront(&entry{key: key, val: stored})
		s.items[key] = el
		s.used += size
	}
	for s.used > s.capacity {
		oldest := s.order.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		s.order.Remove(oldest)
		delete(s.items, e.key)
		s.used -= int64(len(e.val))
		s.evictions++
	}
}

// Delete removes key if cached.
func (s *Server) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.order.Remove(el)
		delete(s.items, key)
		s.used -= int64(len(e.val))
	}
}

// Len returns the number of cached items.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// UsedBytes returns the bytes of cached values.
func (s *Server) UsedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Stats summarize server activity.
type Stats struct {
	Hits, Misses, Evictions int64
	Items                   int
	UsedBytes               int64
}

// Stats returns a snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Hits: s.hits, Misses: s.misses, Evictions: s.evictions,
		Items: len(s.items), UsedBytes: s.used}
}

// Tier is the client-side view of several cache servers: each key maps to
// one server by key hash, so servers hold disjoint partitions (paper: cache
// servers "are responsible for different partitions of data resources").
type Tier struct {
	servers []*Server
}

// NewTier builds a tier of n servers with the given per-server capacity.
func NewTier(n int, perServerCapacity int64) *Tier {
	if n <= 0 {
		n = 1
	}
	t := &Tier{}
	for i := 0; i < n; i++ {
		t.servers = append(t.servers, NewServer(perServerCapacity))
	}
	return t
}

// pick maps key to its server via the same Ketama hash the ring uses.
func (t *Tier) pick(key string) *Server {
	return t.servers[int(ring.Hash(key))%len(t.servers)]
}

// Get looks the key up on its server.
func (t *Tier) Get(key string) ([]byte, bool) { return t.pick(key).Get(key) }

// Set stores the key on its server.
func (t *Tier) Set(key string, val []byte) { t.pick(key).Set(key, val) }

// Delete removes the key from its server.
func (t *Tier) Delete(key string) { t.pick(key).Delete(key) }

// Servers exposes the underlying servers (stats, tests).
func (t *Tier) Servers() []*Server { return t.servers }

// Stats aggregates across servers.
func (t *Tier) Stats() Stats {
	var agg Stats
	for _, s := range t.servers {
		st := s.Stats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Items += st.Items
		agg.UsedBytes += st.UsedBytes
	}
	return agg
}
