package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetSetDelete(t *testing.T) {
	s := NewServer(1024)
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on empty cache hit")
	}
	s.Set("k", []byte("value"))
	v, ok := s.Get("k")
	if !ok || string(v) != "value" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get after Delete hit")
	}
	s.Delete("k") // idempotent
}

func TestSetOverwriteAdjustsUsage(t *testing.T) {
	s := NewServerShards(1024, 1)
	s.Set("k", make([]byte, 100))
	if got := s.UsedBytes(); got != 100 {
		t.Fatalf("UsedBytes = %d", got)
	}
	s.Set("k", make([]byte, 30))
	if got := s.UsedBytes(); got != 30 {
		t.Fatalf("UsedBytes after shrink = %d", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewServer(1024)
	s.Set("k", []byte{1, 2, 3})
	v, _ := s.Get("k")
	v[0] = 99
	v2, _ := s.Get("k")
	if v2[0] != 1 {
		t.Fatal("cache shares memory with callers")
	}
}

// TestLRUEviction checks the exact LRU order a single segment maintains.
func TestLRUEviction(t *testing.T) {
	s := NewServerShards(300, 1)
	s.Set("a", make([]byte, 100))
	s.Set("b", make([]byte, 100))
	s.Set("c", make([]byte, 100))
	// Touch a so b becomes the LRU.
	s.Get("a") //nolint:errcheck
	s.Set("d", make([]byte, 100))
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU item b not evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("item %s wrongly evicted", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d", st.Evictions)
	}
}

func TestOversizeValueNotCached(t *testing.T) {
	s := NewServer(100)
	s.Set("big", make([]byte, 200))
	if _, ok := s.Get("big"); ok {
		t.Fatal("oversize value cached")
	}
	if s.UsedBytes() != 0 {
		t.Fatal("oversize value counted")
	}
}

func TestStatsCounts(t *testing.T) {
	s := NewServer(1024)
	s.Set("k", []byte("v"))
	s.Get("k")    //nolint:errcheck
	s.Get("nope") //nolint:errcheck
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Items != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestCapacityInvariantProperty(t *testing.T) {
	s := NewServerShards(500, 1)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%50)
			size := int(op % 200)
			s.Set(key, make([]byte, size))
			if s.UsedBytes() > 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewServer(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%64)
				s.Set(key, []byte{byte(w)})
				s.Get(key) //nolint:errcheck
				if i%10 == 0 {
					s.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestShardedSpreadsSegments(t *testing.T) {
	s := NewServer(1 << 20)
	if s.Shards() != DefaultShards {
		t.Fatalf("Shards = %d, want %d", s.Shards(), DefaultShards)
	}
	for i := 0; i < 2000; i++ {
		s.Set(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	if s.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", s.Len())
	}
	// Every segment should hold a reasonable share of 2000 uniform keys.
	for i, sh := range s.shards {
		sh.mu.Lock()
		n := len(sh.items)
		sh.mu.Unlock()
		if n < 2000/DefaultShards/4 {
			t.Errorf("segment %d holds only %d of 2000 keys", i, n)
		}
	}
}

func TestShardedCapacityInvariant(t *testing.T) {
	s := NewServer(16 << 10) // 1 KiB per segment
	for i := 0; i < 500; i++ {
		s.Set(fmt.Sprintf("key-%d", i), make([]byte, 100))
	}
	if used := s.UsedBytes(); used > 16<<10 {
		t.Fatalf("UsedBytes = %d exceeds capacity", used)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions once segments filled")
	}
	if st.UsedBytes != s.UsedBytes() {
		t.Fatalf("Stats.UsedBytes = %d, UsedBytes() = %d", st.UsedBytes, s.UsedBytes())
	}
}

func TestShardedCountersConcurrent(t *testing.T) {
	s := NewServer(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				s.Set(key, []byte{byte(w)})
				s.Get(key)                          //nolint:errcheck
				s.Get(fmt.Sprintf("missing-%d", i)) //nolint:errcheck
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits != 8*200 {
		t.Fatalf("Hits = %d, want %d", st.Hits, 8*200)
	}
	if st.Misses != 8*200 {
		t.Fatalf("Misses = %d, want %d", st.Misses, 8*200)
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	s := NewServer(0)
	s.Set("k", []byte("v"))
	if _, ok := s.Get("k"); !ok {
		t.Fatal("default-capacity server rejected a small value")
	}
}

func TestTierPartitionsKeys(t *testing.T) {
	tier := NewTier(4, 1<<20)
	const keys = 2000
	for i := 0; i < keys; i++ {
		tier.Set(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	// Every key must be on exactly one server.
	total := 0
	for _, s := range tier.Servers() {
		n := s.Len()
		total += n
		if n == 0 {
			t.Error("a tier server received no keys")
		}
	}
	if total != keys {
		t.Fatalf("tier holds %d items, want %d", total, keys)
	}
	// Reads route to the same server.
	for i := 0; i < keys; i++ {
		if _, ok := tier.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("tier lost key-%d", i)
		}
	}
}

func TestTierDeleteAndStats(t *testing.T) {
	tier := NewTier(3, 1<<20)
	tier.Set("k", []byte("v"))
	if _, ok := tier.Get("k"); !ok {
		t.Fatal("tier Get missed")
	}
	tier.Delete("k")
	if _, ok := tier.Get("k"); ok {
		t.Fatal("tier Delete ineffective")
	}
	st := tier.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("tier Stats = %+v", st)
	}
}

func TestTierZeroServersDefaults(t *testing.T) {
	tier := NewTier(0, 1024)
	if len(tier.Servers()) != 1 {
		t.Fatal("zero-server tier should default to 1")
	}
}

func BenchmarkServerGetHit(b *testing.B) {
	s := NewServer(1 << 20)
	s.Set("k", make([]byte, 1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get("k") //nolint:errcheck
	}
}

func BenchmarkTierSet(b *testing.B) {
	tier := NewTier(4, 1<<24)
	val := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tier.Set(fmt.Sprintf("key-%d", i%1000), val)
	}
}
