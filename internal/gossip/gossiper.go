package gossip

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mystore/internal/bson"
	"mystore/internal/transport"
)

// Message types the gossiper registers on the transport.
const (
	MsgSyn  = "gossip.syn"
	MsgAck2 = "gossip.ack2"
)

// Event reports a believed status change for an endpoint.
type Event struct {
	Addr string
	Old  Status
	New  Status
}

// Config tunes a Gossiper.
type Config struct {
	// Seeds are the cluster's seed addresses. A node is a seed if its own
	// address appears here. Seeds confirm long failures (§5.2.4).
	Seeds []string
	// ShortFailAfter is the silence after which an endpoint is believed
	// short-failed. Zero means 3 gossip intervals.
	ShortFailAfter time.Duration
	// LongFailAfter is the silence after which a *seed* declares the
	// endpoint long-failed. Zero means 10 gossip intervals.
	LongFailAfter time.Duration
	// Interval is the tick period, used only to derive the defaults above
	// and by RunLoop. Zero means 1s.
	Interval time.Duration
	// Now overrides the clock (deterministic tests). Nil means time.Now.
	Now func() time.Time
	// Seed seeds the peer-selection RNG. Zero derives from the address.
	Seed int64
	// PushOnly disables the pull half of the exchange: the initiator
	// pushes digests and receives newer states, but never answers the
	// peer's "want" list. The ablation bench compares convergence speed
	// against the full Push-Pull-Gossip the paper chose (§5.2.3).
	PushOnly bool
	// OnEvent, when non-nil, receives status-change events synchronously
	// from Tick and message handling.
	OnEvent func(Event)
}

func (c Config) withDefaults(self string) Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.ShortFailAfter <= 0 {
		c.ShortFailAfter = 3 * c.Interval
	}
	if c.LongFailAfter <= 0 {
		c.LongFailAfter = 10 * c.Interval
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Seed == 0 {
		var h int64
		for _, b := range []byte(self) {
			h = h*131 + int64(b)
		}
		c.Seed = h | 1
	}
	return c
}

// Gossiper runs the protocol for one node. Wire it to a transport by
// routing MsgSyn and MsgAck2 messages to HandleMessage, then call Tick
// periodically (or RunLoop).
type Gossiper struct {
	mu        sync.Mutex
	self      string
	cfg       Config
	tr        transport.Transport
	rng       *rand.Rand
	states    map[string]*EndpointState
	lastHeard map[string]time.Time
	status    map[string]Status
	removed   map[string]bool // addresses with an applied removal assertion
}

// New creates a gossiper for the node at tr.Addr().
func New(tr transport.Transport, cfg Config) *Gossiper {
	self := tr.Addr()
	cfg = cfg.withDefaults(self)
	now := cfg.Now()
	g := &Gossiper{
		self:      self,
		cfg:       cfg,
		tr:        tr,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		states:    map[string]*EndpointState{},
		lastHeard: map[string]time.Time{},
		status:    map[string]Status{},
		removed:   map[string]bool{},
	}
	g.states[self] = &EndpointState{
		Generation: now.UnixNano(),
		Heartbeat:  1,
		States:     map[string]VersionedValue{},
	}
	g.status[self] = StatusUp
	g.lastHeard[self] = now
	return g
}

// Self returns this node's address.
func (g *Gossiper) Self() string { return g.self }

// IsSeed reports whether this node is a seed.
func (g *Gossiper) IsSeed() bool {
	for _, s := range g.cfg.Seeds {
		if s == g.self {
			return true
		}
	}
	return false
}

// SetLocal publishes a key/value in this node's own state group, bumping
// its version so it spreads on subsequent rounds.
func (g *Gossiper) SetLocal(key, value string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	es := g.states[g.self]
	next := es.maxVersion() + 1
	es.States[key] = VersionedValue{Value: value, Version: next}
	if subject, ok := removedSubject(key); ok {
		g.applyRemovalLocked(subject, value == "1")
	}
}

// Lookup returns the value of key in addr's state group.
func (g *Gossiper) Lookup(addr, key string) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	es, ok := g.states[addr]
	if !ok {
		return "", false
	}
	vv, ok := es.States[key]
	return vv.Value, ok
}

// StatusOf returns the believed status of addr.
func (g *Gossiper) StatusOf(addr string) Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.status[addr]
}

// Endpoints lists every address the gossiper has state for, sorted.
func (g *Gossiper) Endpoints() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.states))
	for a := range g.states {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// LiveEndpoints lists addresses currently believed Up, sorted.
func (g *Gossiper) LiveEndpoints() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.states))
	for a := range g.states {
		if g.status[a] == StatusUp {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Heartbeat returns addr's last seen heartbeat version (tests/stats).
func (g *Gossiper) Heartbeat(addr string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if es, ok := g.states[addr]; ok {
		return es.Heartbeat
	}
	return 0
}

// Tick runs one gossip round: bump own heartbeat, exchange with one random
// live peer (preferring a seed when this node is not one), then run the
// failure detector.
func (g *Gossiper) Tick(ctx context.Context) {
	g.mu.Lock()
	now := g.cfg.Now()
	self := g.states[g.self]
	self.Heartbeat = self.maxVersion() + 1
	g.lastHeard[g.self] = now
	peer := g.choosePeerLocked()
	g.mu.Unlock()

	if peer != "" {
		g.gossipWith(ctx, peer)
	}
	g.detectFailures(now)
}

// choosePeerLocked picks a gossip target: usually a random known live
// endpoint; with probability 0.3 (or when nothing else is known) a seed.
// Caller holds mu.
func (g *Gossiper) choosePeerLocked() string {
	var candidates []string
	for a := range g.states {
		if a != g.self && g.status[a] != StatusLongFail {
			candidates = append(candidates, a)
		}
	}
	sort.Strings(candidates)
	var seeds []string
	for _, s := range g.cfg.Seeds {
		if s != g.self {
			seeds = append(seeds, s)
		}
	}
	if len(candidates) == 0 || (len(seeds) > 0 && g.rng.Float64() < 0.3) {
		if len(seeds) == 0 {
			if len(candidates) == 0 {
				return ""
			}
			return candidates[g.rng.Intn(len(candidates))]
		}
		return seeds[g.rng.Intn(len(seeds))]
	}
	return candidates[g.rng.Intn(len(candidates))]
}

// gossipWith runs the Syn/Ack1/Ack2 exchange with peer.
func (g *Gossiper) gossipWith(ctx context.Context, peer string) {
	g.mu.Lock()
	syn := bson.D{{Key: "digests", Value: digestsToBSON(g.digestsLocked())}}
	g.mu.Unlock()

	ack1, err := g.tr.Call(ctx, peer, transport.Message{Type: MsgSyn, Body: syn})
	if err != nil {
		return // peer unreachable; the failure detector will notice
	}
	g.markHeard(peer)

	// Apply the states the peer pushed (it had newer versions).
	if sv, ok := ack1.Get("states"); ok {
		g.applyStates(statesFromBSON(sv))
	}
	// Send back the states the peer asked for (the pull half).
	if g.cfg.PushOnly {
		return
	}
	wants := digestsFromBSON(func() any { v, _ := ack1.Get("want"); return v }())
	if len(wants) == 0 {
		return
	}
	g.mu.Lock()
	reply := map[string]*EndpointState{}
	for _, w := range wants {
		if es, ok := g.states[w.Addr]; ok && es.newerThan(w.Generation, w.MaxVersion) {
			reply[w.Addr] = es.clone()
		}
	}
	g.mu.Unlock()
	if len(reply) == 0 {
		return
	}
	body := bson.D{{Key: "states", Value: statesToBSON(reply)}}
	g.tr.Call(ctx, peer, transport.Message{Type: MsgAck2, Body: body}) //nolint:errcheck
}

// HandleMessage processes an incoming gossip message; route transport
// messages of type MsgSyn and MsgAck2 here.
func (g *Gossiper) HandleMessage(_ context.Context, msg transport.Message) (bson.D, error) {
	switch msg.Type {
	case MsgSyn:
		g.markHeard(msg.From)
		remote := digestsFromBSON(func() any { v, _ := msg.Body.Get("digests"); return v }())
		push, want := g.diff(remote)
		return bson.D{
			{Key: "states", Value: statesToBSON(push)},
			{Key: "want", Value: digestsToBSON(want)},
		}, nil
	case MsgAck2:
		g.markHeard(msg.From)
		if sv, ok := msg.Body.Get("states"); ok {
			g.applyStates(statesFromBSON(sv))
		}
		return bson.D{}, nil
	default:
		return nil, nil
	}
}

// digestsLocked summarizes everything this node knows. Caller holds mu.
func (g *Gossiper) digestsLocked() []digest {
	ds := make([]digest, 0, len(g.states))
	for addr, es := range g.states {
		ds = append(ds, digest{Addr: addr, Generation: es.Generation, MaxVersion: es.maxVersion()})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Addr < ds[j].Addr })
	return ds
}

// diff compares remote digests with local state: push = states strictly
// newer here; want = digests for endpoints where the remote is newer (or
// unknown here).
func (g *Gossiper) diff(remote []digest) (push map[string]*EndpointState, want []digest) {
	g.mu.Lock()
	defer g.mu.Unlock()
	push = map[string]*EndpointState{}
	seen := map[string]bool{}
	for _, rd := range remote {
		seen[rd.Addr] = true
		local, ok := g.states[rd.Addr]
		switch {
		case !ok:
			want = append(want, rd.withZeroVersion())
		case local.newerThan(rd.Generation, rd.MaxVersion):
			push[rd.Addr] = local.clone()
		case rd.Generation > local.Generation || (rd.Generation == local.Generation && rd.MaxVersion > local.maxVersion()):
			want = append(want, digest{Addr: rd.Addr, Generation: local.Generation, MaxVersion: local.maxVersion()})
		}
	}
	// Push endpoints the remote has never heard of.
	for addr, es := range g.states {
		if !seen[addr] {
			push[addr] = es.clone()
		}
	}
	return push, want
}

func (d digest) withZeroVersion() digest {
	return digest{Addr: d.Addr, Generation: 0, MaxVersion: 0}
}

// applyStates merges received endpoint states that are newer than local
// knowledge, triggering status events for new or revived endpoints and
// applying removal assertions.
func (g *Gossiper) applyStates(remote map[string]*EndpointState) {
	if len(remote) == 0 {
		return
	}
	var events []Event
	g.mu.Lock()
	now := g.cfg.Now()
	for addr, res := range remote {
		local, ok := g.states[addr]
		if ok && !res.newerThan(local.Generation, local.maxVersion()) {
			continue
		}
		g.states[addr] = res.clone()
		g.lastHeard[addr] = now
		if addr != g.self && !g.removed[addr] && g.status[addr] != StatusUp {
			events = append(events, Event{Addr: addr, Old: g.status[addr], New: StatusUp})
			g.status[addr] = StatusUp
		}
		// Scan for removal assertions carried in this state group.
		for key, vv := range res.States {
			if subject, ok := removedSubject(key); ok {
				g.applyRemovalLocked(subject, vv.Value == "1")
			}
		}
	}
	// Re-derive statuses impacted by new removal knowledge.
	for addr := range g.states {
		if g.removed[addr] && g.status[addr] != StatusLongFail && addr != g.self {
			events = append(events, Event{Addr: addr, Old: g.status[addr], New: StatusLongFail})
			g.status[addr] = StatusLongFail
		}
	}
	cb := g.cfg.OnEvent
	g.mu.Unlock()
	if cb != nil {
		for _, e := range events {
			cb(e)
		}
	}
}

// applyRemovalLocked records a removal (or un-removal) assertion. Caller
// holds mu.
func (g *Gossiper) applyRemovalLocked(addr string, removed bool) {
	if removed {
		g.removed[addr] = true
	} else {
		delete(g.removed, addr)
	}
}

// markHeard refreshes the liveness clock for addr and revives it from
// ShortFail if needed. A seed hearing *directly* from an address it removed
// has proof the node is back (a crash-restart or healed partition that
// outlasted LongFailAfter), so it retracts the removal assertion — without
// this, a long-failed node that returns stays exiled forever because every
// revival path checks the removed set first.
func (g *Gossiper) markHeard(addr string) {
	if addr == "" || addr == g.self {
		return
	}
	var ev *Event
	g.mu.Lock()
	g.lastHeard[addr] = g.cfg.Now()
	if g.removed[addr] && g.IsSeed() {
		es := g.states[g.self]
		next := es.maxVersion() + 1
		es.States[removedKey(addr)] = VersionedValue{Value: "0", Version: next}
		delete(g.removed, addr)
	}
	if _, known := g.states[addr]; known && !g.removed[addr] && g.status[addr] != StatusUp {
		ev = &Event{Addr: addr, Old: g.status[addr], New: StatusUp}
		g.status[addr] = StatusUp
	}
	cb := g.cfg.OnEvent
	g.mu.Unlock()
	if ev != nil && cb != nil {
		cb(*ev)
	}
}

// detectFailures applies the staleness thresholds. Every node can believe a
// peer short-failed; only seeds escalate to long failure, publishing the
// removal so it spreads (§5.2.4: "the seed nodes are responsible for
// detecting 'long failure' node, instead of normal").
func (g *Gossiper) detectFailures(now time.Time) {
	isSeed := g.IsSeed()
	var events []Event
	var toRemove []string
	g.mu.Lock()
	for addr := range g.states {
		if addr == g.self || g.removed[addr] {
			continue
		}
		heard, ok := g.lastHeard[addr]
		if !ok {
			g.lastHeard[addr] = now
			continue
		}
		silence := now.Sub(heard)
		cur := g.status[addr]
		switch {
		case silence >= g.cfg.LongFailAfter && isSeed:
			toRemove = append(toRemove, addr)
		case silence >= g.cfg.ShortFailAfter && cur == StatusUp:
			events = append(events, Event{Addr: addr, Old: cur, New: StatusShortFail})
			g.status[addr] = StatusShortFail
		}
	}
	cb := g.cfg.OnEvent
	g.mu.Unlock()
	for _, e := range events {
		if cb != nil {
			cb(e)
		}
	}
	for _, addr := range toRemove {
		g.DeclareLongFail(addr)
	}
}

// DeclareLongFail publishes a removal assertion for addr (seed action) and
// applies it locally.
func (g *Gossiper) DeclareLongFail(addr string) {
	var ev *Event
	g.mu.Lock()
	es := g.states[g.self]
	next := es.maxVersion() + 1
	es.States[removedKey(addr)] = VersionedValue{Value: "1", Version: next}
	g.removed[addr] = true
	if g.status[addr] != StatusLongFail {
		ev = &Event{Addr: addr, Old: g.status[addr], New: StatusLongFail}
		g.status[addr] = StatusLongFail
	}
	cb := g.cfg.OnEvent
	g.mu.Unlock()
	if ev != nil && cb != nil {
		cb(*ev)
	}
}

// Readmit clears a removal assertion for addr (operator action after
// replacing a node) so it can rejoin.
func (g *Gossiper) Readmit(addr string) {
	g.mu.Lock()
	es := g.states[g.self]
	next := es.maxVersion() + 1
	es.States[removedKey(addr)] = VersionedValue{Value: "0", Version: next}
	delete(g.removed, addr)
	if g.status[addr] == StatusLongFail {
		g.status[addr] = StatusUnknown
	}
	g.mu.Unlock()
}

// RunLoop ticks until ctx is cancelled, for production deployments; the
// simulations call Tick directly on a virtual clock.
func (g *Gossiper) RunLoop(ctx context.Context) {
	t := time.NewTicker(g.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.Tick(ctx)
		}
	}
}
