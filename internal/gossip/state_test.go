package gossip

import (
	"reflect"
	"testing"
)

func TestDigestsBSONRoundTrip(t *testing.T) {
	in := []digest{
		{Addr: "10.0.0.1:19870", Generation: 5, MaxVersion: 99},
		{Addr: "10.0.0.2:19870", Generation: 7, MaxVersion: 1},
	}
	out := digestsFromBSON(digestsToBSON(in))
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if got := digestsFromBSON("not-an-array"); got != nil {
		t.Fatalf("bad input should yield nil, got %v", got)
	}
}

func TestStatesBSONRoundTrip(t *testing.T) {
	in := map[string]*EndpointState{
		"node-a": {
			Generation: 11,
			Heartbeat:  40,
			States: map[string]VersionedValue{
				"load":   {Value: "0.7", Version: 12},
				"weight": {Value: "2", Version: 3},
			},
		},
		"node-b": {
			Generation: 2,
			Heartbeat:  5,
			States:     map[string]VersionedValue{},
		},
	}
	out := statesFromBSON(statesToBSON(in))
	if len(out) != 2 {
		t.Fatalf("decoded %d endpoints", len(out))
	}
	for addr, want := range in {
		got, ok := out[addr]
		if !ok {
			t.Fatalf("missing %s", addr)
		}
		if got.Generation != want.Generation || got.Heartbeat != want.Heartbeat {
			t.Fatalf("%s header mismatch: %+v vs %+v", addr, got, want)
		}
		if !reflect.DeepEqual(got.States, want.States) {
			t.Fatalf("%s states mismatch: %v vs %v", addr, got.States, want.States)
		}
	}
	if got := statesFromBSON(42); got != nil {
		t.Fatalf("bad input should yield nil, got %v", got)
	}
}

func TestMaxVersion(t *testing.T) {
	es := &EndpointState{
		Generation: 1,
		Heartbeat:  10,
		States: map[string]VersionedValue{
			"a": {Value: "x", Version: 25},
			"b": {Value: "y", Version: 7},
		},
	}
	if got := es.maxVersion(); got != 25 {
		t.Fatalf("maxVersion = %d, want 25", got)
	}
	es.States = nil
	if got := es.maxVersion(); got != 10 {
		t.Fatalf("maxVersion with no states = %d, want heartbeat 10", got)
	}
}

func TestNewerThan(t *testing.T) {
	es := &EndpointState{Generation: 5, Heartbeat: 10, States: map[string]VersionedValue{}}
	cases := []struct {
		gen, ver int64
		want     bool
	}{
		{4, 100, true}, // newer generation always wins
		{5, 9, true},   // same generation, higher version
		{5, 10, false}, // identical
		{5, 11, false}, // remote ahead
		{6, 0, false},  // remote generation ahead
	}
	for _, c := range cases {
		if got := es.newerThan(c.gen, c.ver); got != c.want {
			t.Errorf("newerThan(%d, %d) = %v, want %v", c.gen, c.ver, got, c.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	es := &EndpointState{
		Generation: 1, Heartbeat: 2,
		States: map[string]VersionedValue{"k": {Value: "v", Version: 3}},
	}
	c := es.clone()
	c.States["k"] = VersionedValue{Value: "changed", Version: 9}
	c.Heartbeat = 99
	if es.States["k"].Value != "v" || es.Heartbeat != 2 {
		t.Fatal("clone shares state with original")
	}
}

func TestRemovedKeyRoundTrip(t *testing.T) {
	key := removedKey("10.0.0.5:19870")
	subject, ok := removedSubject(key)
	if !ok || subject != "10.0.0.5:19870" {
		t.Fatalf("removedSubject(%q) = %q, %v", key, subject, ok)
	}
	if _, ok := removedSubject("load"); ok {
		t.Fatal("ordinary key parsed as removal")
	}
}
