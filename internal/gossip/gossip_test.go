package gossip

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mystore/internal/transport"
)

// cluster is a test harness: n gossipers on a MemNetwork driven by a
// virtual clock.
type cluster struct {
	net  *transport.MemNetwork
	eps  []*transport.MemTransport
	gs   []*Gossiper
	now  time.Time
	mu   sync.Mutex
	evts []Event
}

func newCluster(t *testing.T, n int, seeds []string) *cluster {
	t.Helper()
	c := &cluster{net: transport.NewMemNetwork(), now: time.Unix(1000, 0)}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("node-%d", i)
		ep, err := c.net.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		g := New(ep, Config{
			Seeds:          seeds,
			Interval:       time.Second,
			ShortFailAfter: 3 * time.Second,
			LongFailAfter:  10 * time.Second,
			Now:            func() time.Time { c.mu.Lock(); defer c.mu.Unlock(); return c.now },
			Seed:           int64(i + 1),
			OnEvent: func(e Event) {
				c.mu.Lock()
				c.evts = append(c.evts, e)
				c.mu.Unlock()
			},
		})
		ep.SetHandler(g.HandleMessage)
		c.eps = append(c.eps, ep)
		c.gs = append(c.gs, g)
	}
	return c
}

func (c *cluster) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// round ticks every gossiper once and advances the clock one interval.
func (c *cluster) round(skip map[int]bool) {
	for i, g := range c.gs {
		if skip[i] {
			continue
		}
		g.Tick(context.Background())
	}
	c.advance(time.Second)
}

func (c *cluster) events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.evts...)
}

func TestConvergenceViaSeeds(t *testing.T) {
	c := newCluster(t, 5, []string{"node-0"})
	for r := 0; r < 12; r++ {
		c.round(nil)
	}
	// Every node should know every endpoint.
	for i, g := range c.gs {
		if got := len(g.Endpoints()); got != 5 {
			t.Fatalf("node-%d knows %d endpoints after 12 rounds, want 5", i, got)
		}
	}
}

func TestStatePropagation(t *testing.T) {
	c := newCluster(t, 4, []string{"node-0"})
	for r := 0; r < 8; r++ {
		c.round(nil)
	}
	c.gs[2].SetLocal("load", "42")
	c.gs[2].SetLocal("vnodes", "100")
	for r := 0; r < 15; r++ {
		c.round(nil)
	}
	for i, g := range c.gs {
		if v, ok := g.Lookup("node-2", "load"); !ok || v != "42" {
			t.Fatalf("node-%d sees node-2 load = %q,%v", i, v, ok)
		}
		if v, _ := g.Lookup("node-2", "vnodes"); v != "100" {
			t.Fatalf("node-%d sees node-2 vnodes = %q", i, v)
		}
	}
}

func TestNewerVersionWins(t *testing.T) {
	c := newCluster(t, 3, []string{"node-0"})
	for r := 0; r < 8; r++ {
		c.round(nil)
	}
	c.gs[1].SetLocal("load", "old")
	for r := 0; r < 8; r++ {
		c.round(nil)
	}
	c.gs[1].SetLocal("load", "new")
	for r := 0; r < 10; r++ {
		c.round(nil)
	}
	for i, g := range c.gs {
		if v, _ := g.Lookup("node-1", "load"); v != "new" {
			t.Fatalf("node-%d stuck at load=%q", i, v)
		}
	}
}

func TestHeartbeatAdvances(t *testing.T) {
	c := newCluster(t, 3, []string{"node-0"})
	for r := 0; r < 6; r++ {
		c.round(nil)
	}
	before := c.gs[0].Heartbeat("node-2")
	for r := 0; r < 6; r++ {
		c.round(nil)
	}
	after := c.gs[0].Heartbeat("node-2")
	if after <= before {
		t.Fatalf("node-2 heartbeat as seen by node-0: %d -> %d, want increase", before, after)
	}
	if c.gs[0].Heartbeat("ghost") != 0 {
		t.Fatal("unknown endpoint heartbeat should be 0")
	}
}

func TestShortFailureDetection(t *testing.T) {
	c := newCluster(t, 4, []string{"node-0"})
	for r := 0; r < 10; r++ {
		c.round(nil)
	}
	// node-3 goes silent (blocked process): it neither gossips nor answers.
	c.eps[3].Close()
	skip := map[int]bool{3: true}
	for r := 0; r < 6; r++ {
		c.round(skip)
	}
	if got := c.gs[0].StatusOf("node-3"); got != StatusShortFail {
		t.Fatalf("node-0 believes node-3 is %v, want short-fail", got)
	}
	found := false
	for _, e := range c.events() {
		if e.Addr == "node-3" && e.New == StatusShortFail {
			found = true
		}
	}
	if !found {
		t.Fatal("no short-fail event emitted")
	}
	// It resumes: status returns to up.
	c.eps[3].Reopen()
	for r := 0; r < 6; r++ {
		c.round(nil)
	}
	if got := c.gs[0].StatusOf("node-3"); got != StatusUp {
		t.Fatalf("node-3 after recovery = %v, want up", got)
	}
}

func TestLongFailureSeedConfirmedAndSpreads(t *testing.T) {
	c := newCluster(t, 5, []string{"node-0"})
	for r := 0; r < 10; r++ {
		c.round(nil)
	}
	// node-4 breaks down for good.
	c.eps[4].Close()
	skip := map[int]bool{4: true}
	for r := 0; r < 25; r++ {
		c.round(skip)
	}
	// The seed must have declared it, and the belief must reach everyone.
	for i := 0; i < 4; i++ {
		if got := c.gs[i].StatusOf("node-4"); got != StatusLongFail {
			t.Fatalf("node-%d believes node-4 is %v, want long-fail", i, got)
		}
	}
	// LiveEndpoints excludes it.
	for i := 0; i < 4; i++ {
		for _, a := range c.gs[i].LiveEndpoints() {
			if a == "node-4" {
				t.Fatalf("node-%d still lists node-4 live", i)
			}
		}
	}
}

func TestNormalNodesDoNotDeclareLongFail(t *testing.T) {
	// No seed present in the silent node's detectors: nobody escalates.
	c := newCluster(t, 3, []string{"node-absent"}) // seed never exists
	for r := 0; r < 10; r++ {
		c.round(nil)
	}
	skip := map[int]bool{2: true}
	for r := 0; r < 30; r++ {
		c.round(skip)
	}
	for i := 0; i < 2; i++ {
		if got := c.gs[i].StatusOf("node-2"); got == StatusLongFail {
			t.Fatalf("normal node-%d escalated to long-fail without a seed", i)
		}
	}
}

func TestDeclareAndReadmit(t *testing.T) {
	c := newCluster(t, 3, []string{"node-0"})
	for r := 0; r < 8; r++ {
		c.round(nil)
	}
	c.gs[0].DeclareLongFail("node-2")
	for r := 0; r < 10; r++ {
		c.round(map[int]bool{2: true})
	}
	if got := c.gs[1].StatusOf("node-2"); got != StatusLongFail {
		t.Fatalf("removal did not spread: node-1 sees %v", got)
	}
	c.gs[0].Readmit("node-2")
	for r := 0; r < 10; r++ {
		c.round(nil)
	}
	if got := c.gs[1].StatusOf("node-2"); got == StatusLongFail {
		t.Fatal("readmission did not spread")
	}
}

func TestSeedAutoReadmitsReturningNode(t *testing.T) {
	// A node removed as long-failed comes back (crash-restart or healed
	// partition) and resumes gossiping. The seed hears from it directly —
	// proof of life — and must retract the removal on its own; no operator
	// Readmit call. The retraction then spreads to every node.
	c := newCluster(t, 4, []string{"node-0"})
	for r := 0; r < 10; r++ {
		c.round(nil)
	}
	c.eps[3].Close()
	skip := map[int]bool{3: true}
	for r := 0; r < 25; r++ {
		c.round(skip)
	}
	if got := c.gs[0].StatusOf("node-3"); got != StatusLongFail {
		t.Fatalf("setup: seed sees node-3 as %v, want long-fail", got)
	}
	c.eps[3].Reopen()
	for r := 0; r < 30; r++ {
		c.round(nil)
	}
	for i := 0; i < 3; i++ {
		if got := c.gs[i].StatusOf("node-3"); got != StatusUp {
			t.Fatalf("node-%d still believes returned node-3 is %v, want up", i, got)
		}
	}
}

func TestIsSeed(t *testing.T) {
	c := newCluster(t, 2, []string{"node-0"})
	if !c.gs[0].IsSeed() {
		t.Error("node-0 should be a seed")
	}
	if c.gs[1].IsSeed() {
		t.Error("node-1 should not be a seed")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusUnknown:   "unknown",
		StatusUp:        "up",
		StatusShortFail: "short-fail",
		StatusLongFail:  "long-fail",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestDigestString(t *testing.T) {
	d := digest{Addr: "10.0.0.1:7000", Generation: 5, MaxVersion: 9}
	if got := d.String(); got != "10.0.0.1:7000;bootGeneration:5;maxVersion:9" {
		t.Fatalf("digest.String() = %q", got)
	}
}

func TestRunLoopStopsOnCancel(t *testing.T) {
	net := transport.NewMemNetwork()
	ep, _ := net.Endpoint("solo")
	g := New(ep, Config{Interval: 5 * time.Millisecond})
	ep.SetHandler(g.HandleMessage)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		g.RunLoop(ctx)
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("RunLoop did not stop on cancel")
	}
}

// TestConvergenceRounds measures rounds-to-convergence for a status change,
// the property the push-pull design optimizes (paper Fig 6): everyone
// learns a new state in O(log n) expected rounds.
func TestConvergenceRounds(t *testing.T) {
	c := newCluster(t, 8, []string{"node-0"})
	for r := 0; r < 16; r++ {
		c.round(nil)
	}
	c.gs[3].SetLocal("marker", "v")
	rounds := 0
	for ; rounds < 40; rounds++ {
		c.round(nil)
		all := true
		for _, g := range c.gs {
			if v, _ := g.Lookup("node-3", "marker"); v != "v" {
				all = false
				break
			}
		}
		if all {
			break
		}
	}
	if rounds >= 40 {
		t.Fatal("marker did not converge in 40 rounds")
	}
	t.Logf("converged in %d rounds on 8 nodes", rounds+1)
}
