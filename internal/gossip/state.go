// Package gossip implements the push-pull anti-entropy protocol MyStore
// uses for state transfer and failure detection (paper §5.2.3). Each node
// maintains a versioned group of key-value states per endpoint; a gossip
// round is the paper's three-message exchange
//
//	A --GossipDigestSynMessage-->  B   (digests: addr, generation, max version)
//	B --GossipDigestAck1Message--> A   (states newer at B + digests B wants)
//	A --GossipDigestAck2Message--> B   (states A has that B asked for)
//
// Seed nodes are gossiped to preferentially; they confirm long failures,
// which then spread to every node as a versioned "removed" state (§5.2.4).
package gossip

import (
	"fmt"
	"sort"
	"strings"

	"mystore/internal/bson"
)

// Status is a node's health as locally believed.
type Status int

// Statuses a node can hold. ShortFail corresponds to the paper's
// self-recovering short failure (the node has merely gone quiet); LongFail
// is a seed-confirmed departure requiring re-replication.
const (
	StatusUnknown Status = iota
	StatusUp
	StatusShortFail
	StatusLongFail
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusUp:
		return "up"
	case StatusShortFail:
		return "short-fail"
	case StatusLongFail:
		return "long-fail"
	default:
		return "unknown"
	}
}

// VersionedValue is one state entry: an opaque string with a version that
// grows monotonically within a generation.
type VersionedValue struct {
	Value   string
	Version int64
}

// EndpointState is everything one node asserts about itself: its boot
// generation, its heartbeat counter, and its application states (load,
// virtual-node count, removal assertions...).
type EndpointState struct {
	Generation int64 // boot time; restarting bumps it
	Heartbeat  int64 // incremented every gossip tick
	States     map[string]VersionedValue
}

// maxVersion is the digest version: the largest version across heartbeat
// and states.
func (e *EndpointState) maxVersion() int64 {
	v := e.Heartbeat
	for _, s := range e.States {
		if s.Version > v {
			v = s.Version
		}
	}
	return v
}

func (e *EndpointState) clone() *EndpointState {
	c := &EndpointState{Generation: e.Generation, Heartbeat: e.Heartbeat,
		States: make(map[string]VersionedValue, len(e.States))}
	for k, v := range e.States {
		c.States[k] = v
	}
	return c
}

// newerThan reports whether e is strictly newer than (generation, version).
func (e *EndpointState) newerThan(generation, version int64) bool {
	if e.Generation != generation {
		return e.Generation > generation
	}
	return e.maxVersion() > version
}

// digest is one endpoint's line in a GossipDigestSynMessage.
type digest struct {
	Addr       string
	Generation int64
	MaxVersion int64
}

// String renders the digest in the paper's template form
// "HostAddress@VirtualNode;...;heartbeat:heartBeatVersion;...".
func (d digest) String() string {
	return fmt.Sprintf("%s;bootGeneration:%d;maxVersion:%d", d.Addr, d.Generation, d.MaxVersion)
}

// --- wire encoding ---

func digestsToBSON(ds []digest) bson.A {
	out := make(bson.A, len(ds))
	for i, d := range ds {
		out[i] = bson.D{
			{Key: "addr", Value: d.Addr},
			{Key: "gen", Value: d.Generation},
			{Key: "ver", Value: d.MaxVersion},
		}
	}
	return out
}

func digestsFromBSON(v any) []digest {
	arr, ok := v.(bson.A)
	if !ok {
		return nil
	}
	out := make([]digest, 0, len(arr))
	for _, e := range arr {
		d, ok := e.(bson.D)
		if !ok {
			continue
		}
		gen, _ := d.Get("gen")
		ver, _ := d.Get("ver")
		genI, _ := gen.(int64)
		verI, _ := ver.(int64)
		out = append(out, digest{Addr: d.StringOr("addr", ""), Generation: genI, MaxVersion: verI})
	}
	return out
}

func statesToBSON(m map[string]*EndpointState) bson.A {
	addrs := make([]string, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	out := make(bson.A, 0, len(m))
	for _, addr := range addrs {
		es := m[addr]
		entries := bson.A{}
		keys := make([]string, 0, len(es.States))
		for k := range es.States {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			vv := es.States[k]
			entries = append(entries, bson.D{
				{Key: "key", Value: k},
				{Key: "val", Value: vv.Value},
				{Key: "ver", Value: vv.Version},
			})
		}
		out = append(out, bson.D{
			{Key: "addr", Value: addr},
			{Key: "gen", Value: es.Generation},
			{Key: "hb", Value: es.Heartbeat},
			{Key: "states", Value: entries},
		})
	}
	return out
}

func statesFromBSON(v any) map[string]*EndpointState {
	arr, ok := v.(bson.A)
	if !ok {
		return nil
	}
	out := make(map[string]*EndpointState, len(arr))
	for _, e := range arr {
		d, ok := e.(bson.D)
		if !ok {
			continue
		}
		addr := d.StringOr("addr", "")
		if addr == "" {
			continue
		}
		genV, _ := d.Get("gen")
		hbV, _ := d.Get("hb")
		gen, _ := genV.(int64)
		hb, _ := hbV.(int64)
		es := &EndpointState{Generation: gen, Heartbeat: hb, States: map[string]VersionedValue{}}
		if sv, ok := d.Get("states"); ok {
			if entries, ok := sv.(bson.A); ok {
				for _, ee := range entries {
					ed, ok := ee.(bson.D)
					if !ok {
						continue
					}
					verV, _ := ed.Get("ver")
					ver, _ := verV.(int64)
					es.States[ed.StringOr("key", "")] = VersionedValue{
						Value:   ed.StringOr("val", ""),
						Version: ver,
					}
				}
			}
		}
		out[addr] = es
	}
	return out
}

// removedKey is the app-state key a seed publishes to assert that addr has
// long-failed; the assertion spreads like any other versioned state.
func removedKey(addr string) string { return "removed:" + addr }

// removedSubject extracts the failed address from a removal key.
func removedSubject(key string) (string, bool) {
	if rest, ok := strings.CutPrefix(key, "removed:"); ok {
		return rest, true
	}
	return "", false
}
