// Package consensus adds a CP replication tier beside MyStore's AP quorum
// path: a per-ring-range replicated log in the style of Raft (randomized
// elections, term-fenced append/commit, majority quorums) extended with
// leader leases for local strong reads (Spinnaker's timeline reads,
// Harmonia's leader-local shortcut).
//
// The 32-bit ring-hash space is cut into Options.Ranges equal ranges; each
// range is replicated by the first ReplicationFactor distinct physical
// nodes clockwise from the range's start position — the same walk NWR uses
// for keys, so a range's consensus replicas are exactly the NWR owners of
// its first key. Each range runs an independent replicated log ("group"):
// strong writes are proposed on the leader, appended under the current
// term, and acknowledged only after a majority has the entry durably logged
// and the leader has applied it to the document store. Committed entries
// carry leader-assigned monotonic versions, so applying them rides the
// existing last-write-wins merge and is idempotent across crash-replay.
//
// The log is WAL-backed (one shared wal.Log per node) when a directory is
// configured; in-memory otherwise. Followers that fall behind the log's
// compaction horizon catch up by snapshot: the leader streams the whole
// range's records over the cluster's bulk-transfer path (idempotent,
// resumable) and then installs a snapshot marker.
package consensus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"mystore/internal/bson"
	"mystore/internal/nwr"
)

// Message types the cluster mux routes here (prefix "cns.").
const (
	// MsgVote is a RequestVote: a candidate solicits one range's replicas.
	MsgVote = "cns.vote"
	// MsgAppend replicates log entries and doubles as the leader heartbeat.
	MsgAppend = "cns.append"
	// MsgSnapshot installs a snapshot marker after the leader has streamed
	// the range's records to a follower that fell behind the log horizon.
	MsgSnapshot = "cns.snapshot"
)

// notLeaderMarker is the wire text ErrNotLeader travels as inside a
// transport.RemoteError; ParseNotLeader recovers the leader hint from it.
const notLeaderMarker = "cns: not leader"

// ErrNotLeader reports that this node cannot serve a strong operation for
// the range; Leader, when known, hints where to retry.
type ErrNotLeader struct {
	Leader string
}

func (e *ErrNotLeader) Error() string {
	if e.Leader == "" {
		return notLeaderMarker
	}
	return fmt.Sprintf("%s; leader=%s", notLeaderMarker, e.Leader)
}

// IsNotLeader reports whether err is a local ErrNotLeader.
func IsNotLeader(err error) bool {
	var nl *ErrNotLeader
	return errors.As(err, &nl)
}

// ParseNotLeader recognizes a (possibly remote-wrapped) not-leader error by
// its wire text and extracts the leader hint ("" when the rejecting node
// knew no leader). The cluster client uses it to redirect strong calls.
func ParseNotLeader(err error) (leader string, ok bool) {
	if err == nil {
		return "", false
	}
	text := err.Error()
	i := strings.Index(text, notLeaderMarker)
	if i < 0 {
		return "", false
	}
	rest := text[i+len(notLeaderMarker):]
	if j := strings.Index(rest, "leader="); j >= 0 {
		leader = rest[j+len("leader="):]
		if k := strings.IndexAny(leader, " ;,\n"); k >= 0 {
			leader = leader[:k]
		}
	}
	return leader, true
}

// Errors besides ErrNotLeader.
var (
	// ErrDisabled means the node runs without a consensus tier.
	ErrDisabled = errors.New("cns: strong consistency disabled")
	// ErrClosed means the manager has shut down.
	ErrClosed = errors.New("cns: manager closed")
	// ErrNoQuorum means a proposal could not reach a durable majority in
	// time (the caller must not treat the write as applied OR as dropped —
	// it may still commit).
	ErrNoQuorum = errors.New("cns: no quorum")
	// ErrNotReplica means this node is not in the range's replica set.
	ErrNotReplica = errors.New("cns: not a replica of this range")
	// ErrPeerMismatch means an incoming RPC carried a replica set that
	// diverges from the one this group was created (and persisted) with —
	// the ring changed under a pinned group. Divergent views could form
	// non-overlapping majorities, so they are rejected loudly until
	// reconfiguration exists.
	ErrPeerMismatch = errors.New("cns: replica set mismatch for range")
	// ErrRingNotReady means the membership view is too small to derive the
	// range's replica set yet.
	ErrRingNotReady = errors.New("cns: ring smaller than replication factor")
	// ErrNotFound is returned by strong reads of absent or deleted keys.
	ErrNotFound = errors.New("cns: key not found")
)

// Entry is one replicated log record. A nil-key entry is the no-op a fresh
// leader commits to establish its commit index (Raft §8) before serving
// leader-local reads.
type Entry struct {
	Index uint64
	Term  uint64
	Rec   nwr.Record
	Noop  bool
}

func (e Entry) toDoc() bson.D {
	d := bson.D{
		{Key: "idx", Value: int64(e.Index)},
		{Key: "term", Value: int64(e.Term)},
	}
	if e.Noop {
		d = append(d, bson.E{Key: "noop", Value: "1"})
	} else {
		d = append(d, bson.E{Key: "rec", Value: e.Rec.ToDoc()})
	}
	return d
}

func entryFromDoc(d bson.D) (Entry, error) {
	e := Entry{}
	iv, _ := d.Get("idx")
	idx, ok := iv.(int64)
	if !ok {
		return e, errors.New("cns: entry missing idx")
	}
	tv, _ := d.Get("term")
	term, ok := tv.(int64)
	if !ok {
		return e, errors.New("cns: entry missing term")
	}
	e.Index, e.Term = uint64(idx), uint64(term)
	if d.StringOr("noop", "0") == "1" {
		e.Noop = true
		return e, nil
	}
	rv, _ := d.Get("rec")
	rd, isDoc := rv.(bson.D)
	if !isDoc {
		return e, errors.New("cns: entry missing rec")
	}
	rec, err := nwr.RecordFromDoc(rd)
	if err != nil {
		return e, err
	}
	e.Rec = rec
	return e, nil
}

// Options tune the consensus tier.
type Options struct {
	// Ranges is how many equal hash ranges the ring is cut into, each with
	// its own replicated log. Default 8.
	Ranges int
	// ReplicationFactor is the replica count per range; the cluster passes
	// its NWR N. Default 3.
	ReplicationFactor int
	// ElectionTimeout is the base follower timeout; actual timeouts are
	// randomized in [ElectionTimeout, 2*ElectionTimeout) from Seed. Default
	// 150ms.
	ElectionTimeout time.Duration
	// HeartbeatInterval spaces leader heartbeats. Default ElectionTimeout/3.
	HeartbeatInterval time.Duration
	// LeaseDuration is how long a majority of append acks lets the leader
	// serve reads locally without re-proving leadership. It is clamped to
	// ElectionTimeout: a new leader cannot be elected while a live old
	// leader still believes its lease, because followers refuse votes while
	// they hear a leader. Default = ElectionTimeout.
	LeaseDuration time.Duration
	// MaxLogEntries is the per-group in-memory log size that triggers
	// compaction of the applied prefix. Default 1024.
	MaxLogEntries int
	// WALDir, when non-empty, persists the consensus log there; empty keeps
	// it in memory (diskless nodes).
	WALDir string
	// SyncEveryAppend makes log appends durable before they count toward
	// quorum (matching the store's durability setting).
	SyncEveryAppend bool
	// Seed seeds the randomized election timeouts (0 = process entropy).
	Seed int64
	// Now injects a clock for deterministic tests.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Ranges <= 0 {
		o.Ranges = 8
	}
	if o.ReplicationFactor <= 0 {
		o.ReplicationFactor = 3
	}
	if o.ElectionTimeout <= 0 {
		o.ElectionTimeout = 150 * time.Millisecond
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = o.ElectionTimeout / 3
	}
	if o.LeaseDuration <= 0 || o.LeaseDuration > o.ElectionTimeout {
		o.LeaseDuration = o.ElectionTimeout
	}
	if o.MaxLogEntries <= 0 {
		o.MaxLogEntries = 1024
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// RangeOf maps a ring hash to its range id under the given range count.
func RangeOf(h uint32, ranges int) int {
	return int(uint64(h) * uint64(ranges) >> 32)
}

// RangeBounds returns [lo, hi) for range rid; hi == 0 means wrap (the top
// of the 32-bit space) for the last range.
func RangeBounds(rid, ranges int) (lo, hi uint32) {
	lo = uint32(uint64(rid) << 32 / uint64(ranges))
	if rid == ranges-1 {
		return lo, 0
	}
	return lo, uint32(uint64(rid+1) << 32 / uint64(ranges))
}

// Env is the cluster's side of the contract: every closure the manager
// needs to talk to peers, the local store, and the membership view. All
// RPCs go through Call, which the cluster wires to its breaker-gated,
// deadline-bounded coordinator path — election probes fast-fail against
// peers whose breakers are open instead of burning a timeout each.
type Env struct {
	// Self is this node's address.
	Self string
	// Call performs one RPC to target (breaker-gated).
	Call func(ctx context.Context, target, msgType string, body bson.D) (bson.D, error)
	// Apply merges one committed record into the local store (LWW merge,
	// idempotent across replay).
	Apply func(ctx context.Context, rec nwr.Record) error
	// Read fetches a key's record from the local store.
	Read func(key string) (nwr.Record, bool, error)
	// Replicas derives the replica set for a range from its start hash
	// (the ring walk). It must fail while the membership view holds fewer
	// than ReplicationFactor nodes.
	Replicas func(lo uint32) ([]string, error)
	// StreamRange bulk-transfers every local record whose key hashes into
	// [lo, hi) to target (hi==0 wraps), reporting full delivery. Used for
	// snapshot catch-up; nil disables snapshots (followers must replay the
	// whole log).
	StreamRange func(ctx context.Context, target string, lo, hi uint32) bool
}
