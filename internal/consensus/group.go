package consensus

import (
	"context"
	"sort"
	"sync"
	"time"

	"mystore/internal/bson"
	"mystore/internal/nwr"
	"mystore/internal/trace"
	"mystore/internal/wal"
)

// Roles of a group replica.
const (
	roleFollower = iota
	roleCandidate
	roleLeader
)

// maxEntriesPerAppend bounds one append RPC so a far-behind follower is
// caught up in pipelined pages instead of one giant frame.
const maxEntriesPerAppend = 128

// group is one range's replicated log: a Raft-style state machine over the
// range's static replica set, extended with the append-ack lease that backs
// leader-local reads. All mutable state is guarded by mu; RPCs are never
// issued while holding it.
type group struct {
	m     *Manager
	rid   int
	lo    uint32 // range start hash (inclusive)
	hi    uint32 // range end hash (exclusive; 0 wraps)
	peers []string

	mu       sync.Mutex
	term     uint64
	votedFor string
	role     int
	leader   string // last known leader ("" when unknown)

	// Log state. log[0] has index firstIndex; everything at or below
	// snapIdx was compacted away (its effect lives in the document store).
	log        []Entry
	firstIndex uint64
	snapIdx    uint64
	snapTerm   uint64

	commitIndex  uint64
	appliedIndex uint64
	durableIndex uint64 // highest self entry known durable in the WAL
	maxVer       int64  // highest record version in the log (leader-monotonic)

	// Leader bookkeeping.
	nextIndex  map[string]uint64
	matchIndex map[string]uint64
	ackTime    map[string]time.Time // send-time of each peer's latest append ack
	inflight   map[string]bool      // an append RPC loop is running for peer
	snapping   map[string]bool      // a snapshot transfer is running for peer
	leaseUntil time.Time
	noopIndex  uint64 // index of this term's no-op barrier entry
	noopTerm   uint64

	lastHeard        time.Time // last valid leader contact (vote stickiness)
	electionDeadline time.Time
	nextHeartbeat    time.Time

	// Propose waiters by entry index; each is resolved on apply (nil) or on
	// leadership loss (ErrNotLeader — the entry may still commit, so the
	// caller retries idempotently).
	waiters map[uint64]*waiter

	// compactLSN is the WAL position of the latest compaction marker: every
	// record at or after it suffices to rebuild this group, so it is the
	// group's floor for WAL truncation.
	compactLSN wal.LSN
}

type waiter struct {
	term uint64
	ch   chan error
}

func (m *Manager) newGroup(rid int, peers []string) *group {
	lo, hi := RangeBounds(rid, m.opts.Ranges)
	now := m.opts.Now()
	g := &group{
		m: m, rid: rid, lo: lo, hi: hi, peers: peers,
		firstIndex: 1,
		waiters:    map[uint64]*waiter{},
		inflight:   map[string]bool{},
		snapping:   map[string]bool{},
		lastHeard:  now,
	}
	g.electionDeadline = now.Add(m.randTimeout())
	return g
}

func (g *group) majority() int { return len(g.peers)/2 + 1 }

func (g *group) lastIndex() uint64 { return g.firstIndex + uint64(len(g.log)) - 1 }

func (g *group) lastTerm() uint64 { return g.termAt(g.lastIndex()) }

// termAt returns the term of the entry at idx (0 for the empty prefix,
// snapTerm at the snapshot point, 0 when unknown/compacted).
func (g *group) termAt(idx uint64) uint64 {
	switch {
	case idx == 0:
		return 0
	case idx == g.snapIdx:
		return g.snapTerm
	case idx >= g.firstIndex && idx <= g.lastIndex():
		return g.log[idx-g.firstIndex].Term
	default:
		return 0
	}
}

// entryAt returns the in-memory entry at idx (caller checked bounds).
func (g *group) entryAt(idx uint64) Entry { return g.log[idx-g.firstIndex] }

// --- ticking -------------------------------------------------------------

// tick drives one group's timers: follower election timeouts, leader
// heartbeats, the lease step-down, and retrying stalled applies.
func (g *group) tick(now time.Time) {
	g.mu.Lock()
	g.applyCommittedLocked()
	switch g.role {
	case roleLeader:
		if now.After(g.leaseUntil) {
			// Lease expired: a majority has not acked within LeaseDuration —
			// the other side of a partition may already have elected a new
			// leader. Step down rather than serve possibly-stale reads or
			// accept writes that can never commit.
			g.m.leaseExpiries.Add(1)
			g.stepDownLocked(g.term, "")
			g.mu.Unlock()
			return
		}
		if now.After(g.nextHeartbeat) {
			g.nextHeartbeat = now.Add(g.m.opts.HeartbeatInterval)
			g.mu.Unlock()
			g.broadcast()
			return
		}
		g.mu.Unlock()
	default:
		if now.After(g.electionDeadline) {
			g.startElectionLocked(now) // releases mu
			return
		}
		g.mu.Unlock()
	}
}

// --- elections -----------------------------------------------------------

// startElectionLocked begins a new election. Called with mu held; releases
// it before soliciting votes.
func (g *group) startElectionLocked(now time.Time) {
	g.term++
	g.votedFor = g.m.env.Self
	g.role = roleCandidate
	g.leader = ""
	g.persistStateLocked()
	g.electionDeadline = now.Add(g.m.randTimeout())
	electionTerm := g.term
	lastIdx, lastTerm := g.lastIndex(), g.lastTerm()
	peers := g.peers
	g.mu.Unlock()
	g.m.elections.Add(1)

	if len(peers) <= 1 {
		g.tryBecomeLeader(electionTerm, 1)
		return
	}
	var voteMu sync.Mutex
	granted := 1 // self
	body := bson.D{
		{Key: "rid", Value: int64(g.rid)},
		{Key: "peers", Value: peersDoc(peers)},
		{Key: "term", Value: int64(electionTerm)},
		{Key: "from", Value: g.m.env.Self},
		{Key: "lastIdx", Value: int64(lastIdx)},
		{Key: "lastTerm", Value: int64(lastTerm)},
	}
	for _, p := range peers {
		if p == g.m.env.Self {
			continue
		}
		peer := p
		g.m.spawn(func(ctx context.Context) {
			ctx, sp := trace.Start(ctx, "cns.election")
			sp.SetPeer(peer)
			resp, err := g.m.env.Call(ctx, peer, MsgVote, body)
			sp.End(err)
			if err != nil {
				return
			}
			if t := uint64(int64Or(resp, "term", 0)); t > electionTerm {
				g.mu.Lock()
				// Step down only if the response still beats our current
				// term: a stale response from an old election must not
				// demote a node that has since moved on (or won) at a
				// higher term.
				if t > g.term {
					g.stepDownLocked(t, "")
				}
				g.mu.Unlock()
				return
			}
			if gv, _ := resp.Get("granted"); gv == true {
				voteMu.Lock()
				granted++
				n := granted
				voteMu.Unlock()
				g.tryBecomeLeader(electionTerm, n)
			}
		})
	}
}

// tryBecomeLeader promotes the candidate once votes reach a majority.
func (g *group) tryBecomeLeader(electionTerm uint64, votes int) {
	if votes < g.majority() {
		return
	}
	g.mu.Lock()
	if g.term != electionTerm || g.role != roleCandidate {
		g.mu.Unlock()
		return
	}
	g.role = roleLeader
	g.leader = g.m.env.Self
	now := g.m.opts.Now()
	g.nextIndex = map[string]uint64{}
	g.matchIndex = map[string]uint64{}
	g.ackTime = map[string]time.Time{}
	for _, p := range g.peers {
		g.nextIndex[p] = g.lastIndex() + 1
	}
	// The fresh leader starts with a full lease: a majority voted for it
	// within the last election timeout, and LeaseDuration <= ElectionTimeout
	// guarantees any older leader's lease has expired by now.
	g.leaseUntil = now.Add(g.m.opts.LeaseDuration)
	g.nextHeartbeat = now
	g.m.electionsWon.Add(1)
	g.m.leaderChanges.Add(1)
	// Commit barrier (Raft §8): a no-op of the new term establishes the
	// commit index before any leader-local read is served.
	lsn := g.appendLeaderEntryLocked(Entry{Noop: true})
	noopIdx := g.lastIndex()
	g.noopIndex = noopIdx
	g.noopTerm = g.term
	g.mu.Unlock()
	g.finishAppend(lsn, noopIdx)
	g.broadcast()
}

// handleVote serves a RequestVote.
func (g *group) handleVote(body bson.D) (bson.D, error) {
	candTerm := uint64(int64Or(body, "term", 0))
	lastIdx := uint64(int64Or(body, "lastIdx", 0))
	lastTerm := uint64(int64Or(body, "lastTerm", 0))
	from := body.StringOr("from", "")
	now := g.m.opts.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if candTerm < g.term {
		return voteReply(g.term, false), nil
	}
	// Leader stickiness: while a live leader has been heard within an
	// election timeout, refuse to elect a challenger — and do NOT adopt its
	// term, or a partitioned node's inflated term would depose a healthy
	// leader on heal. The challenger retries after the leader truly stops.
	if g.leader != "" && g.leader != from &&
		now.Sub(g.lastHeard) < g.m.opts.ElectionTimeout {
		return voteReply(g.term, false), nil
	}
	if candTerm > g.term {
		g.stepDownLocked(candTerm, "")
	}
	upToDate := lastTerm > g.lastTerm() ||
		(lastTerm == g.lastTerm() && lastIdx >= g.lastIndex())
	grant := (g.votedFor == "" || g.votedFor == from) && upToDate
	if grant {
		g.votedFor = from
		g.persistStateLocked()
		g.electionDeadline = now.Add(g.m.randTimeout())
	}
	return voteReply(g.term, grant), nil
}

func voteReply(term uint64, granted bool) bson.D {
	return bson.D{{Key: "term", Value: int64(term)}, {Key: "granted", Value: granted}}
}

// stepDownLocked demotes to follower at term (adopting it when higher) and
// fails every propose waiter — their entries may still commit under the next
// leader, so callers retry rather than treat the write as lost.
func (g *group) stepDownLocked(term uint64, leader string) {
	if term > g.term {
		g.term = term
		g.votedFor = ""
		g.persistStateLocked()
	}
	if g.role == roleLeader {
		g.m.leaderChanges.Add(1)
	}
	g.role = roleFollower
	g.leader = leader
	g.electionDeadline = g.m.opts.Now().Add(g.m.randTimeout())
	g.failWaitersLocked()
}

func (g *group) failWaitersLocked() {
	for idx, w := range g.waiters {
		w.ch <- &ErrNotLeader{Leader: g.leader}
		delete(g.waiters, idx)
	}
}

// --- log append (leader side) --------------------------------------------

// appendLeaderEntryLocked assigns the next index (and a monotonic record
// version) to e, appends it, and persists it. Returns the WAL position the
// caller must wait durable before counting self toward the quorum.
func (g *group) appendLeaderEntryLocked(e Entry) wal.LSN {
	e.Index = g.lastIndex() + 1
	e.Term = g.term
	if !e.Noop {
		v := g.m.opts.Now().UnixNano()
		if v <= g.maxVer {
			v = g.maxVer + 1
		}
		e.Rec.Ver = v
		e.Rec.Origin = g.m.env.Self
		// Mark the record as log-managed: background LWW movers (hint
		// drain, anti-entropy, rebalance) leave _strong records to the
		// replicated log and its snapshot catch-up.
		e.Rec.Strong = true
		g.maxVer = v
	}
	g.log = append(g.log, e)
	return g.persistEntryLocked(e)
}

// finishAppend waits the entry durable, marks self's quorum contribution,
// and advances the commit index if a majority already has it.
func (g *group) finishAppend(lsn wal.LSN, idx uint64) {
	g.m.waitDurable(lsn)
	g.mu.Lock()
	if idx > g.durableIndex {
		g.durableIndex = idx
	}
	g.maybeCommitLocked()
	g.mu.Unlock()
}

// propose replicates rec through the group's log, returning once the entry
// is committed by a majority and applied locally.
func (g *group) propose(ctx context.Context, rec nwr.Record) (err error) {
	ctx, sp := trace.Start(ctx, "cns.propose")
	start := g.m.opts.Now()
	defer func() {
		g.m.proposeLatency.ObserveDuration(g.m.opts.Now().Sub(start))
		sp.End(err)
	}()
	g.mu.Lock()
	if g.role != roleLeader {
		leader := g.leader
		g.mu.Unlock()
		g.m.notLeaderRejects.Add(1)
		return &ErrNotLeader{Leader: leader}
	}
	g.m.proposals.Add(1)
	lsn := g.appendLeaderEntryLocked(Entry{Rec: rec})
	idx := g.lastIndex()
	w := &waiter{term: g.term, ch: make(chan error, 1)}
	g.waiters[idx] = w
	g.mu.Unlock()

	g.finishAppend(lsn, idx)
	g.broadcast()

	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		g.mu.Lock()
		delete(g.waiters, idx)
		g.mu.Unlock()
		return &quorumError{cause: ctx.Err()}
	}
}

type quorumError struct{ cause error }

func (e *quorumError) Error() string { return ErrNoQuorum.Error() + ": " + e.cause.Error() }
func (e *quorumError) Unwrap() error { return ErrNoQuorum }

// broadcast starts (or kicks) one append loop per follower.
func (g *group) broadcast() {
	g.mu.Lock()
	if g.role != roleLeader {
		g.mu.Unlock()
		return
	}
	var launch []string
	for _, p := range g.peers {
		if p == g.m.env.Self || g.inflight[p] {
			continue
		}
		g.inflight[p] = true
		launch = append(launch, p)
	}
	g.mu.Unlock()
	for _, p := range launch {
		peer := p
		g.m.spawn(func(ctx context.Context) { g.appendLoop(ctx, peer) })
	}
}

// appendLoop pushes entries (or a heartbeat) at peer until it is current or
// an RPC fails; the next heartbeat re-arms it.
func (g *group) appendLoop(ctx context.Context, peer string) {
	for {
		g.mu.Lock()
		if g.role != roleLeader || g.m.isClosed() {
			g.inflight[peer] = false
			g.mu.Unlock()
			return
		}
		term := g.term
		ni := g.nextIndex[peer]
		if ni < g.firstIndex {
			// The follower needs entries we compacted away: snapshot catch-up.
			g.inflight[peer] = false
			if g.snapping[peer] {
				g.mu.Unlock()
				return
			}
			g.snapping[peer] = true
			g.mu.Unlock()
			g.sendSnapshot(ctx, peer, term)
			return
		}
		prevIdx := ni - 1
		prevTerm := g.termAt(prevIdx)
		var entries bson.A
		last := g.lastIndex()
		for idx := ni; idx <= last && len(entries) < maxEntriesPerAppend; idx++ {
			entries = append(entries, g.entryAt(idx).toDoc())
		}
		sentTo := prevIdx + uint64(len(entries))
		commit := g.commitIndex
		body := bson.D{
			{Key: "rid", Value: int64(g.rid)},
			{Key: "peers", Value: peersDoc(g.peers)},
			{Key: "term", Value: int64(term)},
			{Key: "leader", Value: g.m.env.Self},
			{Key: "prevIdx", Value: int64(prevIdx)},
			{Key: "prevTerm", Value: int64(prevTerm)},
			{Key: "entries", Value: entries},
			{Key: "commit", Value: int64(commit)},
		}
		g.mu.Unlock()

		sent := g.m.opts.Now()
		actx, sp := trace.Start(ctx, "cns.append")
		sp.SetPeer(peer)
		resp, err := g.m.env.Call(actx, peer, MsgAppend, body)
		sp.End(err)

		g.mu.Lock()
		if err != nil || g.role != roleLeader || g.term != term {
			g.inflight[peer] = false
			g.mu.Unlock()
			return
		}
		if t := uint64(int64Or(resp, "term", 0)); t > g.term {
			g.inflight[peer] = false
			g.stepDownLocked(t, "")
			g.mu.Unlock()
			return
		}
		if ok, _ := resp.Get("ok"); ok == true {
			if sentTo > g.matchIndex[peer] {
				g.matchIndex[peer] = sentTo
			}
			g.nextIndex[peer] = g.matchIndex[peer] + 1
			if prev := g.ackTime[peer]; sent.After(prev) {
				g.ackTime[peer] = sent
			}
			g.recomputeLeaseLocked()
			g.maybeCommitLocked()
			if g.nextIndex[peer] > g.lastIndex() {
				g.inflight[peer] = false
				g.mu.Unlock()
				return
			}
			g.mu.Unlock()
			continue // more entries pending: keep streaming
		}
		if ns, _ := resp.Get("needSnap"); ns == true {
			g.inflight[peer] = false
			if g.snapping[peer] {
				g.mu.Unlock()
				return
			}
			g.snapping[peer] = true
			g.mu.Unlock()
			g.sendSnapshot(ctx, peer, term)
			return
		}
		// Log mismatch: back up to the follower's conflict hint and retry.
		conflict := uint64(int64Or(resp, "conflict", 0))
		next := ni - 1
		if conflict > 0 && conflict < next {
			next = conflict
		}
		if next < 1 {
			next = 1
		}
		g.nextIndex[peer] = next
		g.mu.Unlock()
	}
}

// recomputeLeaseLocked extends the lease to the majority-th most recent
// append-ack send time plus LeaseDuration. Times are all leader-local, so
// the lease needs no clock agreement between nodes: at the chosen instant a
// majority had acknowledged this leader, and none of them will grant a vote
// for at least ElectionTimeout >= LeaseDuration after it.
func (g *group) recomputeLeaseLocked() {
	times := []time.Time{g.m.opts.Now()} // self acks implicitly
	for _, p := range g.peers {
		if p == g.m.env.Self {
			continue
		}
		if t, ok := g.ackTime[p]; ok {
			times = append(times, t)
		}
	}
	if len(times) < g.majority() {
		return
	}
	sort.Slice(times, func(i, j int) bool { return times[i].After(times[j]) })
	until := times[g.majority()-1].Add(g.m.opts.LeaseDuration)
	if until.After(g.leaseUntil) {
		g.leaseUntil = until
	}
}

// maybeCommitLocked advances the commit index to the highest entry a
// majority holds durably, provided it belongs to the current term (Raft
// §5.4.2 — older-term entries commit only transitively).
func (g *group) maybeCommitLocked() {
	if g.role != roleLeader {
		return
	}
	idxs := []uint64{g.durableIndex}
	for _, p := range g.peers {
		if p == g.m.env.Self {
			continue
		}
		idxs = append(idxs, g.matchIndex[p])
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
	candidate := idxs[g.majority()-1]
	if candidate > g.commitIndex && g.termAt(candidate) == g.term {
		g.commitIndex = candidate
		g.m.commits.Add(int64(candidate - g.appliedIndex))
		g.applyCommittedLocked()
	}
}

// applyCommittedLocked applies every committed-but-unapplied entry to the
// document store in log order and resolves its waiter. Applies ride the LWW
// merge, so re-applying after a crash-replay is a no-op. A failed apply
// (fault injection, disk trouble) stops the loop; the next tick retries.
func (g *group) applyCommittedLocked() {
	for g.appliedIndex < g.commitIndex {
		idx := g.appliedIndex + 1
		if idx < g.firstIndex {
			// Compacted below the snapshot point: the store already has it.
			g.appliedIndex = g.firstIndex - 1
			continue
		}
		e := g.entryAt(idx)
		if !e.Noop {
			if err := g.m.env.Apply(g.m.baseCtx, e.Rec); err != nil {
				return
			}
			g.m.applies.Add(1)
		}
		g.appliedIndex = idx
		if w, ok := g.waiters[idx]; ok {
			if w.term == e.Term {
				w.ch <- nil
			} else {
				w.ch <- &ErrNotLeader{Leader: g.leader}
			}
			delete(g.waiters, idx)
		}
	}
	g.compactLocked()
}

// --- follower side -------------------------------------------------------

// handleAppend serves replication and heartbeats.
func (g *group) handleAppend(body bson.D) (bson.D, error) {
	term := uint64(int64Or(body, "term", 0))
	leader := body.StringOr("leader", "")
	prevIdx := uint64(int64Or(body, "prevIdx", 0))
	prevTerm := uint64(int64Or(body, "prevTerm", 0))
	commit := uint64(int64Or(body, "commit", 0))

	g.mu.Lock()
	if term < g.term {
		// Stale-term append: a deposed leader that has not heard the news.
		g.m.staleTermRejects.Add(1)
		reply := bson.D{{Key: "term", Value: int64(g.term)}, {Key: "ok", Value: false}}
		g.mu.Unlock()
		return reply, nil
	}
	if term > g.term || g.role != roleFollower {
		g.stepDownLocked(term, leader)
	}
	g.leader = leader
	now := g.m.opts.Now()
	g.lastHeard = now
	g.electionDeadline = now.Add(g.m.randTimeout())

	// Log-matching check.
	if prevIdx > 0 && prevIdx < g.snapIdx {
		// We compacted past prevIdx; our state already covers it. Report our
		// snapshot point so the leader resumes above it.
		reply := bson.D{
			{Key: "term", Value: int64(g.term)},
			{Key: "ok", Value: false},
			{Key: "conflict", Value: int64(g.snapIdx + 1)},
		}
		g.mu.Unlock()
		return reply, nil
	}
	if prevIdx > g.lastIndex() {
		reply := bson.D{
			{Key: "term", Value: int64(g.term)},
			{Key: "ok", Value: false},
			{Key: "conflict", Value: int64(g.lastIndex() + 1)},
		}
		g.mu.Unlock()
		return reply, nil
	}
	if prevIdx > 0 && g.termAt(prevIdx) != prevTerm {
		if prevIdx < g.firstIndex {
			// Can't verify below our log horizon: need a snapshot.
			reply := bson.D{
				{Key: "term", Value: int64(g.term)},
				{Key: "ok", Value: false},
				{Key: "needSnap", Value: true},
			}
			g.mu.Unlock()
			return reply, nil
		}
		// Conflicting entry: drop it and everything after, then report the
		// conflict point so the leader backs up.
		g.truncateFromLocked(prevIdx)
		reply := bson.D{
			{Key: "term", Value: int64(g.term)},
			{Key: "ok", Value: false},
			{Key: "conflict", Value: int64(prevIdx)},
		}
		g.mu.Unlock()
		return reply, nil
	}

	// Append new entries, overwriting any conflicting suffix. lastCovered
	// tracks the highest index this RPC verified: prevIdx (checked by the
	// log-matching test above) plus every entry matched in place or appended.
	var maxLSN wal.LSN
	appended := uint64(0)
	lastCovered := prevIdx
	if v, ok := body.Get("entries"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, ev := range arr {
				d, isDoc := ev.(bson.D)
				if !isDoc {
					continue
				}
				e, err := entryFromDoc(d)
				if err != nil {
					continue
				}
				if e.Index <= g.lastIndex() {
					if g.termAt(e.Index) == e.Term {
						lastCovered = e.Index
						continue // already have it
					}
					g.truncateFromLocked(e.Index)
				}
				if e.Index != g.lastIndex()+1 {
					break // gap; leader will back up
				}
				g.log = append(g.log, e)
				if !e.Noop && e.Rec.Ver > g.maxVer {
					g.maxVer = e.Rec.Ver
				}
				if lsn := g.persistEntryLocked(e); lsn > maxLSN {
					maxLSN = lsn
				}
				lastCovered = e.Index
				appended++
			}
		}
	}
	matched := g.lastIndex()
	g.mu.Unlock()

	if appended > 0 {
		// Durability before ack: the leader counts this follower toward the
		// commit quorum on our reply.
		g.m.waitDurable(maxLSN)
	}

	g.mu.Lock()
	if commit > g.commitIndex {
		// Raft's "index of last new entry" rule: advance the commit index
		// only through the prefix this RPC verified. Capping at our own
		// lastIndex instead could commit a divergent, never-verified suffix
		// (stale-term entries beyond the append window, or a suffix retained
		// across a snapshot install).
		c := commit
		if c > lastCovered {
			c = lastCovered
		}
		if c > g.commitIndex {
			g.commitIndex = c
		}
	}
	g.applyCommittedLocked()
	g.mu.Unlock()
	return bson.D{
		{Key: "term", Value: int64(term)},
		{Key: "ok", Value: true},
		{Key: "match", Value: int64(matched)},
	}, nil
}

// truncateFromLocked drops log entries at idx and above (a conflicting
// suffix from a deposed leader) and persists the cut.
func (g *group) truncateFromLocked(idx uint64) {
	if idx < g.firstIndex || idx > g.lastIndex() {
		return
	}
	g.log = g.log[:idx-g.firstIndex]
	g.m.persist(bson.D{
		{Key: "t", Value: "x"},
		{Key: "rid", Value: int64(g.rid)},
		{Key: "from", Value: int64(idx)},
	})
}

// --- snapshot catch-up ---------------------------------------------------

// sendSnapshot streams the whole range's records to peer over the cluster
// bulk path, then installs the snapshot marker. Resumable by construction:
// every streamed batch merges LWW on the receiver, so a crash mid-transfer
// (either side) just re-streams on the next attempt.
func (g *group) sendSnapshot(ctx context.Context, peer string, term uint64) {
	defer func() {
		g.mu.Lock()
		g.snapping[peer] = false
		g.mu.Unlock()
	}()
	g.mu.Lock()
	snapIdx := g.firstIndex - 1
	snapTerm := g.snapTerm
	lo, hi := g.lo, g.hi
	g.mu.Unlock()
	g.m.snapshotsSent.Add(1)
	sctx, sp := trace.Start(ctx, "cns.snapshot")
	sp.SetPeer(peer)
	if g.m.env.StreamRange != nil && !g.m.env.StreamRange(sctx, peer, lo, hi) {
		sp.End(ErrNoQuorum)
		return
	}
	resp, err := g.m.env.Call(sctx, peer, MsgSnapshot, bson.D{
		{Key: "rid", Value: int64(g.rid)},
		{Key: "peers", Value: peersDoc(g.peers)},
		{Key: "term", Value: int64(term)},
		{Key: "leader", Value: g.m.env.Self},
		{Key: "snapIdx", Value: int64(snapIdx)},
		{Key: "snapTerm", Value: int64(snapTerm)},
	})
	sp.End(err)
	if err != nil {
		return
	}
	g.mu.Lock()
	if g.role == roleLeader && g.term == term {
		if t := uint64(int64Or(resp, "term", 0)); t > g.term {
			g.stepDownLocked(t, "")
		} else if snapIdx+1 > g.nextIndex[peer] {
			g.nextIndex[peer] = snapIdx + 1
			if snapIdx > g.matchIndex[peer] {
				g.matchIndex[peer] = snapIdx
			}
		}
	}
	g.mu.Unlock()
	g.broadcast()
}

// handleSnapshot installs a snapshot marker: the leader has already
// streamed the range's records into our store.
func (g *group) handleSnapshot(body bson.D) (bson.D, error) {
	term := uint64(int64Or(body, "term", 0))
	leader := body.StringOr("leader", "")
	snapIdx := uint64(int64Or(body, "snapIdx", 0))
	snapTerm := uint64(int64Or(body, "snapTerm", 0))
	g.mu.Lock()
	defer g.mu.Unlock()
	if term < g.term {
		g.m.staleTermRejects.Add(1)
		return bson.D{{Key: "term", Value: int64(g.term)}, {Key: "ok", Value: false}}, nil
	}
	if term > g.term || g.role != roleFollower {
		g.stepDownLocked(term, leader)
	}
	g.leader = leader
	now := g.m.opts.Now()
	g.lastHeard = now
	g.electionDeadline = now.Add(g.m.randTimeout())
	if snapIdx > g.snapIdx {
		if snapIdx >= g.lastIndex() || g.termAt(snapIdx) != snapTerm {
			g.log = nil
		} else {
			g.log = append([]Entry(nil), g.log[snapIdx+1-g.firstIndex:]...)
		}
		g.snapIdx, g.snapTerm = snapIdx, snapTerm
		g.firstIndex = snapIdx + 1
		if snapIdx > g.commitIndex {
			g.commitIndex = snapIdx
		}
		if snapIdx > g.appliedIndex {
			g.appliedIndex = snapIdx
		}
		g.persistCompactionLocked()
		g.m.snapshotsInstalled.Add(1)
	}
	return bson.D{{Key: "term", Value: int64(g.term)}, {Key: "ok", Value: true}}, nil
}

// --- compaction ----------------------------------------------------------

// compactLocked drops the applied log prefix once the in-memory log exceeds
// the configured bound. The document store is the snapshot; the WAL keeps a
// compaction marker (plus the retained tail, re-appended) so replay can
// start from the marker and the segments before it become removable.
func (g *group) compactLocked() {
	max := g.m.opts.MaxLogEntries
	if len(g.log) <= max || g.appliedIndex < g.firstIndex+uint64(max)/2 {
		return
	}
	g.snapTerm = g.termAt(g.appliedIndex)
	g.snapIdx = g.appliedIndex
	g.log = append([]Entry(nil), g.log[g.appliedIndex+1-g.firstIndex:]...)
	g.firstIndex = g.appliedIndex + 1
	g.persistCompactionLocked()
}

// persistCompactionLocked writes the compaction marker plus the retained
// tail; everything before the marker's LSN is no longer needed for this
// group.
func (g *group) persistCompactionLocked() {
	lsn := g.m.persist(bson.D{
		{Key: "t", Value: "c"},
		{Key: "rid", Value: int64(g.rid)},
		{Key: "snapIdx", Value: int64(g.snapIdx)},
		{Key: "snapTerm", Value: int64(g.snapTerm)},
		{Key: "term", Value: int64(g.term)},
		{Key: "vote", Value: g.votedFor},
		{Key: "peers", Value: peersDoc(g.peers)},
	})
	for _, e := range g.log {
		g.persistEntryLocked(e)
	}
	if lsn > 0 {
		g.compactLSN = lsn
	}
}

// --- reads ---------------------------------------------------------------

// leaderRead checks this replica may serve a strong read right now: it is
// the leader, its lease is live, and this term's no-op barrier has applied
// (so the commit index is known current). Harmonia/Spinnaker's leader-local
// read: no quorum round-trip.
func (g *group) leaderRead() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.role != roleLeader {
		g.m.notLeaderRejects.Add(1)
		return &ErrNotLeader{Leader: g.leader}
	}
	if g.m.opts.Now().After(g.leaseUntil) {
		g.m.notLeaderRejects.Add(1)
		return &ErrNotLeader{}
	}
	if g.noopTerm != g.term || g.appliedIndex < g.noopIndex {
		return ErrNoQuorum // barrier not applied yet; caller retries briefly
	}
	return nil
}

// --- persistence ---------------------------------------------------------

// persistStateLocked makes (term, votedFor) durable before it is acted on;
// voting twice in a term after a restart would break election safety.
func (g *group) persistStateLocked() {
	lsn := g.m.persist(bson.D{
		{Key: "t", Value: "s"},
		{Key: "rid", Value: int64(g.rid)},
		{Key: "term", Value: int64(g.term)},
		{Key: "vote", Value: g.votedFor},
	})
	g.m.waitDurable(lsn)
}

func (g *group) persistEntryLocked(e Entry) wal.LSN {
	doc := bson.D{
		{Key: "t", Value: "e"},
		{Key: "rid", Value: int64(g.rid)},
	}
	doc = append(doc, e.toDoc()...)
	return g.m.persist(doc)
}

// walFloor is the earliest WAL position still needed to rebuild this group.
func (g *group) walFloor() wal.LSN {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.compactLSN
}

// --- helpers -------------------------------------------------------------

// checkPeers rejects a replica set that diverges from the one this group was
// created (and persisted) with. Replica sets are pinned at creation until
// reconfiguration lands, so after a ring change different nodes could hold
// the same range with non-overlapping majorities; set inequality fails
// loudly here instead of silently forming a split quorum. Order-insensitive:
// both sides derive from the same ring walk, but set membership is the
// invariant that matters. g.peers is immutable, so no lock is needed.
func (g *group) checkPeers(peers []string) error {
	if len(peers) != len(g.peers) {
		return ErrPeerMismatch
	}
	for _, p := range peers {
		found := false
		for _, q := range g.peers {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			return ErrPeerMismatch
		}
	}
	return nil
}

func peersDoc(peers []string) bson.A {
	out := make(bson.A, len(peers))
	for i, p := range peers {
		out[i] = p
	}
	return out
}

func int64Or(d bson.D, key string, def int64) int64 {
	v, ok := d.Get(key)
	if !ok {
		return def
	}
	i, isInt := v.(int64)
	if !isInt {
		return def
	}
	return i
}
