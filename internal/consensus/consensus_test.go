package consensus

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"mystore/internal/bson"
	"mystore/internal/nwr"
	"mystore/internal/ring"
)

// testCluster is an in-package harness: managers wired together with direct
// Call closures, a partition set, and a map store per node.
type testCluster struct {
	mu    sync.Mutex
	nodes map[string]*testNode
	cut   map[string]bool // partitioned-off addresses
}

type testNode struct {
	addr     string
	m        *Manager
	mu       sync.Mutex
	store    map[string]nwr.Record
	readHook func(key string) // called at the top of every Env.Read
}

func (tn *testNode) setReadHook(h func(key string)) {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	tn.readHook = h
}

func (tn *testNode) getReadHook() func(key string) {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return tn.readHook
}

func (tn *testNode) apply(rec nwr.Record) {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	if old, ok := tn.store[rec.Key]; !ok || rec.Newer(old) {
		tn.store[rec.Key] = rec
	}
}

func (tn *testNode) read(key string) (nwr.Record, bool) {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	rec, ok := tn.store[key]
	return rec, ok
}

func (tc *testCluster) reachable(a, b string) bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return !tc.cut[a] && !tc.cut[b]
}

func (tc *testCluster) partition(addrs ...string) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, a := range addrs {
		tc.cut[a] = true
	}
}

func (tc *testCluster) heal() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.cut = map[string]bool{}
}

// newTestCluster starts n managers replicating every range across all n
// nodes (replication factor n), with walDirs[i] persisting node i's log
// when non-empty.
func newTestCluster(t *testing.T, n int, walDirs []string) *testCluster {
	t.Helper()
	tc := &testCluster{nodes: map[string]*testNode{}, cut: map[string]bool{}}
	var addrs []string
	for i := 0; i < n; i++ {
		addrs = append(addrs, fmt.Sprintf("n%d", i))
	}
	sort.Strings(addrs)
	for i, addr := range addrs {
		self := addr
		tn := &testNode{addr: self, store: map[string]nwr.Record{}}
		env := Env{
			Self: self,
			Call: func(ctx context.Context, target, msgType string, body bson.D) (bson.D, error) {
				if !tc.reachable(self, target) {
					return nil, errors.New("test: partitioned")
				}
				tc.mu.Lock()
				peer := tc.nodes[target]
				tc.mu.Unlock()
				if peer == nil {
					return nil, errors.New("test: no such node")
				}
				return peer.m.HandleMessage(msgType, body)
			},
			Apply: func(ctx context.Context, rec nwr.Record) error {
				tn.apply(rec)
				return nil
			},
			Read: func(key string) (nwr.Record, bool, error) {
				if h := tn.getReadHook(); h != nil {
					h(key)
				}
				rec, ok := tn.read(key)
				return rec, ok, nil
			},
			Replicas: func(lo uint32) ([]string, error) { return addrs, nil },
			StreamRange: func(ctx context.Context, target string, lo, hi uint32) bool {
				if !tc.reachable(self, target) {
					return false
				}
				tc.mu.Lock()
				peer := tc.nodes[target]
				tc.mu.Unlock()
				if peer == nil {
					return false
				}
				tn.mu.Lock()
				var recs []nwr.Record
				for k, rec := range tn.store {
					h := ring.Hash(k)
					if inRange(h, lo, hi) {
						recs = append(recs, rec)
					}
				}
				tn.mu.Unlock()
				for _, rec := range recs {
					peer.apply(rec)
				}
				return true
			},
		}
		walDir := ""
		if walDirs != nil {
			walDir = walDirs[i]
		}
		m, err := NewManager(Options{
			Ranges:            4,
			ReplicationFactor: n,
			ElectionTimeout:   50 * time.Millisecond,
			WALDir:            walDir,
			SyncEveryAppend:   walDir != "",
			Seed:              int64(42 + i),
		}, env)
		if err != nil {
			t.Fatalf("NewManager(%s): %v", self, err)
		}
		tn.m = m
		tc.mu.Lock()
		tc.nodes[self] = tn
		tc.mu.Unlock()
	}
	t.Cleanup(func() {
		tc.mu.Lock()
		nodes := make([]*testNode, 0, len(tc.nodes))
		for _, tn := range tc.nodes {
			nodes = append(nodes, tn)
		}
		tc.mu.Unlock()
		for _, tn := range nodes {
			tn.m.Close()
		}
	})
	return tc
}

func inRange(h, lo, hi uint32) bool {
	if hi == 0 {
		return h >= lo
	}
	return h >= lo && h < hi
}

// leaderFor polls until exactly one live node leads key's range.
func (tc *testCluster) leaderFor(t *testing.T, key string, timeout time.Duration) *testNode {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var leaders []*testNode
		tc.mu.Lock()
		nodes := make([]*testNode, 0, len(tc.nodes))
		for _, tn := range tc.nodes {
			nodes = append(nodes, tn)
		}
		cut := make(map[string]bool, len(tc.cut))
		for a := range tc.cut {
			cut[a] = true
		}
		tc.mu.Unlock()
		for _, tn := range nodes {
			if cut[tn.addr] {
				continue
			}
			if tn.m.LeadsKey(key) {
				leaders = append(leaders, tn)
			}
		}
		if len(leaders) == 1 {
			return leaders[0]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no single leader for %q within %v", key, timeout)
	return nil
}

func TestElectionAndStrongRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	key := "dragon"
	// A strong op against any replica triggers lazy group creation; only the
	// eventual leader accepts it.
	ctx := context.Background()
	var leader *testNode
	deadline := time.Now().Add(3 * time.Second)
	for {
		for _, tn := range tc.nodes {
			if err := tn.m.Put(ctx, key, []byte("hoard"), true); err == nil {
				leader = tn
			}
		}
		if leader != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no node accepted a strong put within 3s")
	}
	rec, err := leader.m.Get(ctx, key)
	if err != nil {
		t.Fatalf("leader strong get: %v", err)
	}
	if string(rec.Val) != "hoard" {
		t.Fatalf("strong get: got %q want %q", rec.Val, "hoard")
	}
	// A follower must bounce strong reads with a leader hint.
	for _, tn := range tc.nodes {
		if tn == leader {
			continue
		}
		_, err := tn.m.Get(ctx, key)
		if !IsNotLeader(err) {
			t.Fatalf("follower strong get: got %v, want ErrNotLeader", err)
		}
		if hint, ok := ParseNotLeader(err); ok && hint != "" && hint != leader.addr {
			t.Fatalf("follower hint %q, want %q", hint, leader.addr)
		}
	}
	// The write reaches every replica's store once the commit index rides
	// the following heartbeats.
	deadline = time.Now().Add(2 * time.Second)
	for {
		applied := 0
		for _, tn := range tc.nodes {
			if rec, ok := tn.read(key); ok && string(rec.Val) == "hoard" {
				applied++
			}
		}
		if applied == len(tc.nodes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write applied on %d/%d nodes", applied, len(tc.nodes))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStaleTermAppendRefused(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	key := "stale"
	ctx := context.Background()
	var leader *testNode
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline) && leader == nil; {
		for _, tn := range tc.nodes {
			if tn.m.Put(ctx, key, []byte("v"), true) == nil {
				leader = tn
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader within 3s")
	}
	// Hand-craft an append from a deposed leader: term 0 is below any
	// elected term.
	var follower *testNode
	for _, tn := range tc.nodes {
		if tn != leader {
			follower = tn
			break
		}
	}
	rid := RangeOf(ring.Hash(key), 4)
	var peers bson.A
	for a := range tc.nodes {
		peers = append(peers, a)
	}
	resp, err := follower.m.HandleMessage(MsgAppend, bson.D{
		{Key: "rid", Value: int64(rid)},
		{Key: "peers", Value: peers},
		{Key: "term", Value: int64(0)},
		{Key: "leader", Value: "impostor"},
		{Key: "prevIdx", Value: int64(0)},
		{Key: "prevTerm", Value: int64(0)},
		{Key: "commit", Value: int64(0)},
	})
	if err != nil {
		t.Fatalf("stale append errored instead of replying: %v", err)
	}
	if ok, _ := resp.Get("ok"); ok == true {
		t.Fatal("stale-term append accepted; want refusal")
	}
	if got := follower.m.Stats().StaleTermRejects; got == 0 {
		t.Fatal("stale-term reject not counted")
	}
	// The refusal must carry the follower's (higher) term.
	if term, _ := resp.Get("term"); term.(int64) < 1 {
		t.Fatalf("refusal term %v, want >= 1", term)
	}
}

func TestLeaderStepsDownOnLeaseExpiryUnderPartition(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	key := "lease"
	ctx := context.Background()
	var leader *testNode
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline) && leader == nil; {
		for _, tn := range tc.nodes {
			if tn.m.Put(ctx, key, []byte("v1"), true) == nil {
				leader = tn
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader within 3s")
	}
	// Cut the leader off from both followers.
	tc.partition(leader.addr)
	// Its lease must expire and it must stop claiming leadership.
	deadline := time.Now().Add(2 * time.Second)
	for leader.m.LeadsKey(key) {
		if time.Now().After(deadline) {
			t.Fatal("partitioned leader still claims leadership after 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if leader.m.Stats().LeaseExpiries == 0 {
		t.Fatal("lease expiry not counted")
	}
	// Strong reads on the deposed leader must be refused, not served stale.
	if _, err := leader.m.Get(ctx, key); err == nil {
		t.Fatal("deposed leader served a strong read")
	}
	// The majority side elects a replacement.
	newLeader := tc.leaderFor(t, key, 3*time.Second)
	if newLeader.addr == leader.addr {
		t.Fatal("partitioned node re-elected itself without quorum")
	}
	if err := newLeader.m.Put(ctx, key, []byte("v2"), true); err != nil {
		t.Fatalf("majority-side put: %v", err)
	}
	// Heal: the old leader rejoins as a follower and converges.
	tc.heal()
	deadline = time.Now().Add(3 * time.Second)
	for {
		if rec, ok := leader.read(key); ok && string(rec.Val) == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healed ex-leader did not converge to v2")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConflictingSuffixOverwritten(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	key := "conflict"
	ctx := context.Background()
	var leader *testNode
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline) && leader == nil; {
		for _, tn := range tc.nodes {
			if tn.m.Put(ctx, key, []byte("base"), true) == nil {
				leader = tn
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader within 3s")
	}
	tc.partition(leader.addr)
	// Propose on the cut-off leader: it appends locally but can never
	// commit; the waiter must fail (step-down or timeout), never ack.
	pctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	err := leader.m.Put(pctx, key, []byte("orphan"), true)
	cancel()
	if err == nil {
		t.Fatal("partitioned leader acked a strong write without quorum")
	}
	// Majority side moves on.
	newLeader := tc.leaderFor(t, key, 3*time.Second)
	if err := newLeader.m.Put(ctx, key, []byte("winner"), true); err != nil {
		t.Fatalf("majority-side put: %v", err)
	}
	tc.heal()
	// The old leader's conflicting suffix is truncated and replaced; all
	// stores converge on the committed value.
	deadline := time.Now().Add(3 * time.Second)
	for {
		done := true
		for _, tn := range tc.nodes {
			rec, ok := tn.read(key)
			if !ok || string(rec.Val) != "winner" {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			rec, _ := leader.read(key)
			t.Fatalf("stores did not converge on %q; ex-leader has %q", "winner", rec.Val)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWALReplayRestoresLog(t *testing.T) {
	dir := t.TempDir()
	addr := "n0"
	store := map[string]nwr.Record{}
	var storeMu sync.Mutex
	newEnv := func() Env {
		return Env{
			Self: addr,
			Call: func(ctx context.Context, target, msgType string, body bson.D) (bson.D, error) {
				return nil, errors.New("test: single node")
			},
			Apply: func(ctx context.Context, rec nwr.Record) error {
				storeMu.Lock()
				defer storeMu.Unlock()
				if old, ok := store[rec.Key]; !ok || rec.Newer(old) {
					store[rec.Key] = rec
				}
				return nil
			},
			Read: func(key string) (nwr.Record, bool, error) {
				storeMu.Lock()
				defer storeMu.Unlock()
				rec, ok := store[key]
				return rec, ok, nil
			},
			Replicas: func(lo uint32) ([]string, error) { return []string{addr}, nil },
		}
	}
	opts := Options{
		Ranges:            4,
		ReplicationFactor: 1,
		ElectionTimeout:   30 * time.Millisecond,
		WALDir:            dir,
		SyncEveryAppend:   true,
		Seed:              7,
	}
	m, err := NewManager(opts, newEnv())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ctx := context.Background()
	keys := []string{"a", "b", "c", "d", "e"}
	var put int
	deadline := time.Now().Add(3 * time.Second)
	for put < len(keys) && time.Now().Before(deadline) {
		if err := m.Put(ctx, keys[put], []byte("v-"+keys[put]), true); err == nil {
			put++
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if put < len(keys) {
		t.Fatalf("only %d/%d strong puts accepted", put, len(keys))
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen against an EMPTY store: only the replayed log can restore the
	// values (the snapshot floor is zero — nothing was compacted).
	storeMu.Lock()
	store = map[string]nwr.Record{}
	storeMu.Unlock()
	m2, err := NewManager(opts, newEnv())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	for _, k := range keys {
		var rec nwr.Record
		deadline := time.Now().Add(3 * time.Second)
		for {
			rec, err = m2.Get(ctx, k)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("strong get %q after replay: %v", k, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if string(rec.Val) != "v-"+k {
			t.Fatalf("replayed %q = %q, want %q", k, rec.Val, "v-"+k)
		}
	}
}

// TestFollowerCommitCappedAtVerifiedPrefix pins the Raft "index of last new
// entry" rule: a follower holding entries beyond what an append RPC verified
// must not commit them just because leaderCommit is high — those entries may
// be a divergent suffix the leader never checked.
func TestFollowerCommitCappedAtVerifiedPrefix(t *testing.T) {
	var mu sync.Mutex
	applied := map[string]bool{}
	env := Env{
		Self: "n0",
		Call: func(ctx context.Context, target, msgType string, body bson.D) (bson.D, error) {
			return nil, errors.New("test: passive follower")
		},
		Apply: func(ctx context.Context, rec nwr.Record) error {
			mu.Lock()
			applied[rec.Key] = true
			mu.Unlock()
			return nil
		},
		Read:     func(key string) (nwr.Record, bool, error) { return nwr.Record{}, false, nil },
		Replicas: func(lo uint32) ([]string, error) { return []string{"n0", "pa", "pb"}, nil },
	}
	m, err := NewManager(Options{
		Ranges:            4,
		ReplicationFactor: 3,
		// Long timeout: the node stays a passive follower for the whole test.
		ElectionTimeout: 10 * time.Second,
		Seed:            1,
	}, env)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	defer m.Close()

	peers := bson.A{"n0", "pa", "pb"}
	entry := func(idx, term int64, key string) bson.D {
		e := Entry{
			Index: uint64(idx),
			Term:  uint64(term),
			Rec:   nwr.Record{Key: key, Val: []byte("v"), IsData: true, Ver: idx, Origin: "pa", Strong: true},
		}
		return e.toDoc()
	}
	// A term-2 leader replicates entries 1..3; none are committed yet.
	resp, err := m.HandleMessage(MsgAppend, bson.D{
		{Key: "rid", Value: int64(0)},
		{Key: "peers", Value: peers},
		{Key: "term", Value: int64(2)},
		{Key: "leader", Value: "pa"},
		{Key: "prevIdx", Value: int64(0)},
		{Key: "prevTerm", Value: int64(0)},
		{Key: "entries", Value: bson.A{entry(1, 2, "cap-a"), entry(2, 2, "cap-b"), entry(3, 2, "cap-c")}},
		{Key: "commit", Value: int64(0)},
	})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if ok, _ := resp.Get("ok"); ok != true {
		t.Fatalf("append refused: %v", resp)
	}
	// A term-3 leader (which may have replaced entries 2..3 on its own log)
	// heartbeats with prevIdx 1 and commit 3. Only index 1 was verified by
	// this RPC; the follower must not commit its unverified 2..3 suffix.
	resp, err = m.HandleMessage(MsgAppend, bson.D{
		{Key: "rid", Value: int64(0)},
		{Key: "peers", Value: peers},
		{Key: "term", Value: int64(3)},
		{Key: "leader", Value: "pb"},
		{Key: "prevIdx", Value: int64(1)},
		{Key: "prevTerm", Value: int64(2)},
		{Key: "entries", Value: bson.A{}},
		{Key: "commit", Value: int64(3)},
	})
	if err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if ok, _ := resp.Get("ok"); ok != true {
		t.Fatalf("heartbeat refused: %v", resp)
	}
	mu.Lock()
	defer mu.Unlock()
	if !applied["cap-a"] {
		t.Fatal("verified entry 1 not applied after commit advance")
	}
	if applied["cap-b"] || applied["cap-c"] {
		t.Fatal("unverified suffix committed: heartbeat covered only index 1")
	}
}

// TestDivergentPeerSetRejected pins the split-quorum guard: an incoming RPC
// whose replica set diverges from the group's pinned set fails loudly.
func TestDivergentPeerSetRejected(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.mu.Lock()
	n0 := tc.nodes["n0"]
	tc.mu.Unlock()
	// Create the group on n0 with the pinned set {n0, n1, n2}.
	if _, err := n0.m.HandleMessage(MsgVote, bson.D{
		{Key: "rid", Value: int64(0)},
		{Key: "peers", Value: bson.A{"n0", "n1", "n2"}},
		{Key: "term", Value: int64(1)},
		{Key: "from", Value: "n1"},
		{Key: "lastIdx", Value: int64(0)},
		{Key: "lastTerm", Value: int64(0)},
	}); err != nil {
		t.Fatalf("vote (group creation): %v", err)
	}
	// A divergent membership view must be rejected, not silently adopted.
	_, err := n0.m.HandleMessage(MsgAppend, bson.D{
		{Key: "rid", Value: int64(0)},
		{Key: "peers", Value: bson.A{"n0", "n1", "rogue"}},
		{Key: "term", Value: int64(1)},
		{Key: "leader", Value: "n1"},
		{Key: "prevIdx", Value: int64(0)},
		{Key: "prevTerm", Value: int64(0)},
		{Key: "commit", Value: int64(0)},
	})
	if !errors.Is(err, ErrPeerMismatch) {
		t.Fatalf("divergent peer set: got %v, want ErrPeerMismatch", err)
	}
	// The same set in a different order is the same membership view.
	if _, err := n0.m.HandleMessage(MsgAppend, bson.D{
		{Key: "rid", Value: int64(0)},
		{Key: "peers", Value: bson.A{"n2", "n0", "n1"}},
		{Key: "term", Value: int64(1)},
		{Key: "leader", Value: "n1"},
		{Key: "prevIdx", Value: int64(0)},
		{Key: "prevTerm", Value: int64(0)},
		{Key: "commit", Value: int64(0)},
	}); errors.Is(err, ErrPeerMismatch) {
		t.Fatal("permuted peer set rejected; order must not matter")
	}
}

// TestStrongReadRefusedWhenLeaseExpiresMidRead pins the lease re-check after
// the local read: a leader that stalls past its lease mid-read must refuse
// the result instead of returning a possibly-stale value.
func TestStrongReadRefusedWhenLeaseExpiresMidRead(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	key := "mid-read"
	ctx := context.Background()
	var leader *testNode
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline) && leader == nil; {
		for _, tn := range tc.nodes {
			if tn.m.Put(ctx, key, []byte("v"), true) == nil {
				leader = tn
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader within 3s")
	}
	if _, err := leader.m.Get(ctx, key); err != nil {
		t.Fatalf("healthy strong get: %v", err)
	}
	// Stall the next read past the lease: cut the leader off (so append acks
	// cannot extend the lease) and sleep well beyond LeaseDuration.
	var once sync.Once
	leader.setReadHook(func(string) {
		once.Do(func() {
			tc.partition(leader.addr)
			time.Sleep(300 * time.Millisecond) // LeaseDuration is 50ms here
		})
	})
	if _, err := leader.m.Get(ctx, key); err == nil {
		t.Fatal("strong read served a value after the lease expired mid-read")
	}
}

func TestRangeMapping(t *testing.T) {
	for _, ranges := range []int{1, 2, 8, 64} {
		for _, h := range []uint32{0, 1, 1 << 30, 1<<31 + 12345, ^uint32(0)} {
			rid := RangeOf(h, ranges)
			if rid < 0 || rid >= ranges {
				t.Fatalf("RangeOf(%d,%d)=%d out of range", h, ranges, rid)
			}
			lo, hi := RangeBounds(rid, ranges)
			if !inRange(h, lo, hi) {
				t.Fatalf("hash %d not in bounds [%d,%d) of its range %d/%d", h, lo, hi, rid, ranges)
			}
		}
	}
}
