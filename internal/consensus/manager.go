package consensus

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mystore/internal/bson"
	"mystore/internal/metrics"
	"mystore/internal/nwr"
	"mystore/internal/ring"
	"mystore/internal/trace"
	"mystore/internal/wal"
)

// Manager owns every consensus group this node replicates, the shared WAL
// behind their logs, and the ticker that drives elections, heartbeats, and
// lease step-downs. Groups are created lazily: from the first strong
// operation touching a range this node replicates, or from the first
// incoming consensus RPC (whose body carries the range's replica set).
type Manager struct {
	opts Options
	env  Env
	log  *wal.Log // nil when running in memory

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	groups map[int]*group
	closed bool

	rngMu sync.Mutex
	rng   *rand.Rand

	// Stats counters (see Stats).
	elections          atomic.Int64
	electionsWon       atomic.Int64
	leaderChanges      atomic.Int64
	proposals          atomic.Int64
	commits            atomic.Int64
	applies            atomic.Int64
	notLeaderRejects   atomic.Int64
	leaseExpiries      atomic.Int64
	staleTermRejects   atomic.Int64
	snapshotsSent      atomic.Int64
	snapshotsInstalled atomic.Int64
	strongReads        atomic.Int64

	proposeLatency *metrics.BucketedHistogram
}

// NewManager opens (and replays) the consensus WAL and starts the tick loop.
func NewManager(opts Options, env Env) (*Manager, error) {
	opts = opts.withDefaults()
	m := &Manager{
		opts:           opts,
		env:            env,
		groups:         map[int]*group{},
		proposeLatency: metrics.NewBucketedHistogram(nil),
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	m.rng = rand.New(rand.NewSource(seed))
	m.baseCtx, m.cancel = context.WithCancel(context.Background())
	if opts.WALDir != "" {
		log, err := wal.Open(opts.WALDir, wal.Options{
			SyncEveryAppend: opts.SyncEveryAppend,
		})
		if err != nil {
			return nil, err
		}
		m.log = log
		if err := m.replay(); err != nil {
			log.Close()
			return nil, err
		}
		m.finishReplay()
	}
	m.wg.Add(1)
	go m.tickLoop()
	return m, nil
}

// randTimeout draws an election timeout in [ET, 2*ET).
func (m *Manager) randTimeout() time.Duration {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	et := m.opts.ElectionTimeout
	return et + time.Duration(m.rng.Int63n(int64(et)))
}

func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// spawn runs fn on the manager's base context, tracked for Close.
func (m *Manager) spawn(fn func(ctx context.Context)) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.wg.Add(1)
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		fn(m.baseCtx)
	}()
}

// tickLoop drives every group's timers. It runs at half the heartbeat
// interval — the cluster's gossip tick is far too coarse for sub-200ms
// election timeouts.
func (m *Manager) tickLoop() {
	defer m.wg.Done()
	period := m.opts.HeartbeatInterval / 2
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case now := <-t.C:
			for _, g := range m.groupList() {
				g.tick(now)
			}
			m.truncateWAL()
		}
	}
}

func (m *Manager) groupList() []*group {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*group, 0, len(m.groups))
	for _, g := range m.groups {
		out = append(out, g)
	}
	return out
}

// --- group lookup / creation ---------------------------------------------

// groupForKey finds or creates the group replicating key's range. Returns
// ErrNotLeader with a replica hint when this node is not in the replica set.
func (m *Manager) groupForKey(key string) (*group, error) {
	rid := RangeOf(ring.Hash(key), m.opts.Ranges)
	return m.groupFor(rid, nil)
}

// groupFor returns the group for rid, creating it when this node belongs to
// the replica set. peers, when non-nil, is the authoritative set from an
// incoming RPC; otherwise it is derived from the ring walk.
func (m *Manager) groupFor(rid int, peers []string) (*group, error) {
	fromRPC := peers != nil
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if g, ok := m.groups[rid]; ok {
		m.mu.Unlock()
		if fromRPC {
			if err := g.checkPeers(peers); err != nil {
				return nil, err
			}
		}
		return g, nil
	}
	m.mu.Unlock()

	if peers == nil {
		lo, _ := RangeBounds(rid, m.opts.Ranges)
		got, err := m.env.Replicas(lo)
		if err != nil {
			return nil, err
		}
		if len(got) < m.opts.ReplicationFactor {
			return nil, ErrRingNotReady
		}
		peers = got[:m.opts.ReplicationFactor]
	}
	self := false
	for _, p := range peers {
		if p == m.env.Self {
			self = true
			break
		}
	}
	if !self {
		// Not a replica: point the caller at the range's first replica, the
		// most likely leader.
		hint := ""
		if len(peers) > 0 {
			hint = peers[0]
		}
		m.notLeaderRejects.Add(1)
		return nil, &ErrNotLeader{Leader: hint}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if g, ok := m.groups[rid]; ok {
		if fromRPC {
			if err := g.checkPeers(peers); err != nil {
				return nil, err
			}
		}
		return g, nil
	}
	g := m.newGroup(rid, peers)
	m.groups[rid] = g
	// Group creation is durable before first use so a restarted node
	// recreates its groups (and the rebalance guard over their ranges)
	// from replay alone.
	lsn := m.persist(bson.D{
		{Key: "t", Value: "p"},
		{Key: "rid", Value: int64(rid)},
		{Key: "peers", Value: peersDoc(peers)},
	})
	m.waitDurable(lsn)
	g.compactLSN = lsn
	return g, nil
}

// --- strong operations ----------------------------------------------------

// Put proposes a strong write and returns once a majority has it durably
// logged and it is applied locally.
func (m *Manager) Put(ctx context.Context, key string, val []byte, isData bool) error {
	return m.propose(ctx, nwr.Record{Key: key, Val: val, IsData: isData})
}

// Delete proposes a strong delete (a replicated tombstone).
func (m *Manager) Delete(ctx context.Context, key string) error {
	return m.propose(ctx, nwr.Record{Key: key, Deleted: true})
}

func (m *Manager) propose(ctx context.Context, rec nwr.Record) error {
	g, err := m.groupForKey(rec.Key)
	if err != nil {
		return err
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 10*m.opts.ElectionTimeout)
		defer cancel()
	}
	for {
		err = g.propose(ctx, rec)
		var nl *ErrNotLeader
		if !errors.As(err, &nl) || nl.Leader != "" {
			// Success, a hard failure, or a redirectable rejection: the
			// caller (or the client's redirect hop) takes it from here.
			return err
		}
		// Leaderless window — a just-created group or an election in
		// flight. The proposer is a replica of this range, so a leader is
		// due within an election timeout or two; ride it out instead of
		// bouncing the client into blind retries.
		select {
		case <-ctx.Done():
			return err
		case <-time.After(m.opts.ElectionTimeout / 10):
		}
	}
}

// Get serves a strong read: leader-local under a live lease, after this
// term's no-op barrier has applied (Raft §8) — no quorum round-trip. A
// leader whose barrier is still in flight is retried briefly rather than
// bounced, since the window is one commit round.
func (m *Manager) Get(ctx context.Context, key string) (nwr.Record, error) {
	g, err := m.groupForKey(key)
	if err != nil {
		return nwr.Record{}, err
	}
	ctx, sp := trace.Start(ctx, "cns.read")
	deadline := m.opts.Now().Add(2 * m.opts.ElectionTimeout)
	for {
		err = g.leaderRead()
		if err == nil {
			break
		}
		// Two transient states are waited out rather than bounced: the
		// no-op barrier still committing (ErrNoQuorum) and a leaderless
		// election window (ErrNotLeader without a hint).
		var nl *ErrNotLeader
		retryable := err == ErrNoQuorum || (errors.As(err, &nl) && nl.Leader == "")
		if !retryable || m.opts.Now().After(deadline) {
			sp.End(err)
			return nwr.Record{}, err
		}
		select {
		case <-ctx.Done():
			sp.End(ctx.Err())
			return nwr.Record{}, &quorumError{cause: ctx.Err()}
		case <-time.After(5 * time.Millisecond):
		}
	}
	m.strongReads.Add(1)
	rec, found, err := m.env.Read(key)
	if err == nil {
		// Re-verify the lease now that the read has completed: if this
		// goroutine stalled past leaseUntil mid-read, a new leader may have
		// committed a write elsewhere and the value above could be stale.
		if lerr := g.leaderRead(); lerr != nil {
			err = lerr
		}
	}
	sp.End(err)
	if err != nil {
		return nwr.Record{}, err
	}
	if !found || rec.Deleted {
		return nwr.Record{}, ErrNotFound
	}
	return rec, nil
}

// --- guards for the eventual tier ----------------------------------------

// GuardKey reports whether background LWW paths (anti-entropy, hint drain)
// must leave key alone right now: its range has a consensus group whose
// leader is some other node, so pushing LWW writes would race the log.
func (m *Manager) GuardKey(key string) bool {
	m.mu.Lock()
	g, ok := m.groups[RangeOf(ring.Hash(key), m.opts.Ranges)]
	m.mu.Unlock()
	if !ok {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leader != "" && g.leader != m.env.Self
}

// ReplicatesKey reports whether this node is a consensus replica for key's
// range. Rebalance must never migrate away (then locally drop) records in
// such ranges: consensus replicas hold records whose per-key NWR owner sets
// may not include this node.
func (m *Manager) ReplicatesKey(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.groups[RangeOf(ring.Hash(key), m.opts.Ranges)]
	return ok
}

// LeadsKey reports whether this node currently leads key's range (tests and
// the chaos harness use it to aim kills at leaders).
func (m *Manager) LeadsKey(key string) bool {
	m.mu.Lock()
	g, ok := m.groups[RangeOf(ring.Hash(key), m.opts.Ranges)]
	m.mu.Unlock()
	if !ok {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.role == roleLeader
}

// LeaderOf returns the last known leader of key's range ("" when unknown or
// the group does not exist here).
func (m *Manager) LeaderOf(key string) string {
	m.mu.Lock()
	g, ok := m.groups[RangeOf(ring.Hash(key), m.opts.Ranges)]
	m.mu.Unlock()
	if !ok {
		return ""
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leader
}

// RangesLed counts ranges this node currently leads.
func (m *Manager) RangesLed() int {
	n := 0
	for _, g := range m.groupList() {
		g.mu.Lock()
		if g.role == roleLeader {
			n++
		}
		g.mu.Unlock()
	}
	return n
}

// --- RPC dispatch ---------------------------------------------------------

// HandleMessage serves one cns.* RPC from the cluster mux.
func (m *Manager) HandleMessage(msgType string, body bson.D) (bson.D, error) {
	rid := int(int64Or(body, "rid", -1))
	if rid < 0 || rid >= m.opts.Ranges {
		return nil, ErrNotReplica
	}
	var peers []string
	if v, ok := body.Get("peers"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, pv := range arr {
				if s, isStr := pv.(string); isStr {
					peers = append(peers, s)
				}
			}
		}
	}
	if len(peers) == 0 {
		return nil, ErrNotReplica
	}
	g, err := m.groupFor(rid, peers)
	if err != nil {
		return nil, err
	}
	switch msgType {
	case MsgVote:
		return g.handleVote(body)
	case MsgAppend:
		return g.handleAppend(body)
	case MsgSnapshot:
		return g.handleSnapshot(body)
	default:
		return nil, ErrNotReplica
	}
}

// --- persistence ----------------------------------------------------------

// persist appends one consensus record to the shared WAL (no-op without
// one). Durability is the caller's business: quorum-relevant records wait
// via waitDurable before they count.
func (m *Manager) persist(doc bson.D) wal.LSN {
	if m.log == nil {
		return 0
	}
	raw, err := bson.Marshal(doc)
	if err != nil {
		return 0
	}
	lsn, err := m.log.AppendNoWait(raw)
	if err != nil {
		return 0
	}
	return lsn
}

func (m *Manager) waitDurable(lsn wal.LSN) {
	if m.log == nil || lsn == 0 {
		return
	}
	m.log.WaitDurable(lsn)
}

// replay rebuilds every group from the consensus WAL. Record kinds:
//
//	"p" group creation {rid, peers}
//	"s" hard state {rid, term, vote}
//	"e" log entry {rid, idx, term, rec|noop}
//	"x" truncate-from {rid, from} (conflict suffix removal)
//	"c" compaction marker {rid, snapIdx, snapTerm, term, vote, peers};
//	    the retained tail is re-appended after it, so replay from the
//	    latest "c" alone is complete for that group.
//
// Everything replays as a follower; elections start fresh after the first
// election timeout.
func (m *Manager) replay() error {
	return m.log.Replay(0, func(lsn wal.LSN, raw []byte) error {
		doc, err := bson.Unmarshal(raw)
		if err != nil {
			return nil // torn/foreign record: skip, repair handled by wal.Open
		}
		rid := int(int64Or(doc, "rid", -1))
		if rid < 0 {
			return nil
		}
		switch doc.StringOr("t", "") {
		case "p":
			peers := peersFromDoc(doc)
			if len(peers) == 0 {
				return nil
			}
			if _, ok := m.groups[rid]; !ok {
				g := m.newGroup(rid, peers)
				g.compactLSN = lsn
				m.groups[rid] = g
			}
		case "s":
			if g, ok := m.groups[rid]; ok {
				g.term = uint64(int64Or(doc, "term", 0))
				g.votedFor = doc.StringOr("vote", "")
			}
		case "e":
			g, ok := m.groups[rid]
			if !ok {
				return nil
			}
			e, err := entryFromDoc(doc)
			if err != nil {
				return nil
			}
			if e.Index <= g.lastIndex() && e.Index >= g.firstIndex {
				// Overwrite from a later append (conflict resolution midair).
				g.log = g.log[:e.Index-g.firstIndex]
			}
			if e.Index == g.lastIndex()+1 {
				g.log = append(g.log, e)
				if !e.Noop && e.Rec.Ver > g.maxVer {
					g.maxVer = e.Rec.Ver
				}
			}
		case "x":
			if g, ok := m.groups[rid]; ok {
				from := uint64(int64Or(doc, "from", 0))
				if from >= g.firstIndex && from <= g.lastIndex() {
					g.log = g.log[:from-g.firstIndex]
				}
			}
		case "c":
			g, ok := m.groups[rid]
			if !ok {
				peers := peersFromDoc(doc)
				if len(peers) == 0 {
					return nil
				}
				g = m.newGroup(rid, peers)
				m.groups[rid] = g
			}
			g.term = uint64(int64Or(doc, "term", 0))
			g.votedFor = doc.StringOr("vote", "")
			g.snapIdx = uint64(int64Or(doc, "snapIdx", 0))
			g.snapTerm = uint64(int64Or(doc, "snapTerm", 0))
			g.firstIndex = g.snapIdx + 1
			g.log = nil
			g.maxVer = 0
			g.compactLSN = lsn
		}
		return nil
	})
}

// finishReplay restores derived indexes after replay: the whole surviving
// log is durable (it was just read back from disk), and everything at or
// below the snapshot point is already in the document store.
func (m *Manager) finishReplay() {
	for _, g := range m.groups {
		g.durableIndex = g.lastIndex()
		g.commitIndex = g.snapIdx
		g.appliedIndex = g.snapIdx
	}
}

// truncateWAL drops consensus WAL segments below every group's compaction
// floor. Groups that never compacted floor at their creation record.
func (m *Manager) truncateWAL() {
	if m.log == nil {
		return
	}
	var min wal.LSN
	first := true
	for _, g := range m.groupList() {
		f := g.walFloor()
		if f == 0 {
			return // a group has no durable floor yet: keep everything
		}
		if first || f < min {
			min, first = f, false
		}
	}
	if !first && min > 0 {
		m.log.TruncateBefore(min)
	}
}

func peersFromDoc(doc bson.D) []string {
	v, ok := doc.Get("peers")
	if !ok {
		return nil
	}
	arr, isArr := v.(bson.A)
	if !isArr {
		return nil
	}
	var peers []string
	for _, pv := range arr {
		if s, isStr := pv.(string); isStr {
			peers = append(peers, s)
		}
	}
	return peers
}

// --- stats / lifecycle ----------------------------------------------------

// Stats is a snapshot of the manager's counters.
type Stats struct {
	RangesLed          int
	Elections          int64
	ElectionsWon       int64
	LeaderChanges      int64
	Proposals          int64
	Commits            int64
	Applies            int64
	NotLeaderRejects   int64
	LeaseExpiries      int64
	StaleTermRejects   int64
	SnapshotsSent      int64
	SnapshotsInstalled int64
	StrongReads        int64
}

func (m *Manager) Stats() Stats {
	return Stats{
		RangesLed:          m.RangesLed(),
		Elections:          m.elections.Load(),
		ElectionsWon:       m.electionsWon.Load(),
		LeaderChanges:      m.leaderChanges.Load(),
		Proposals:          m.proposals.Load(),
		Commits:            m.commits.Load(),
		Applies:            m.applies.Load(),
		NotLeaderRejects:   m.notLeaderRejects.Load(),
		LeaseExpiries:      m.leaseExpiries.Load(),
		StaleTermRejects:   m.staleTermRejects.Load(),
		SnapshotsSent:      m.snapshotsSent.Load(),
		SnapshotsInstalled: m.snapshotsInstalled.Load(),
		StrongReads:        m.strongReads.Load(),
	}
}

// ProposeLatency exposes the propose latency histogram for metrics wiring.
func (m *Manager) ProposeLatency() *metrics.BucketedHistogram { return m.proposeLatency }

// Close shuts the manager down cleanly: stop timers, fail waiters, sync and
// close the WAL.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	for _, g := range m.groupList() {
		g.mu.Lock()
		g.failWaitersLocked()
		g.mu.Unlock()
	}
	m.wg.Wait()
	if m.log != nil {
		return m.log.Close()
	}
	return nil
}

// Kill is the kill -9 teardown: abandon the WAL without syncing so pending
// appends are lost exactly as a crash would lose them.
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	for _, g := range m.groupList() {
		g.mu.Lock()
		g.failWaitersLocked()
		g.mu.Unlock()
	}
	if m.log != nil {
		m.log.Abandon()
	}
	m.wg.Wait()
}
