package mystore

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestStrongFailoverAcrossLeaderKill loads a consensus range's leader with
// acked strong writes, kills it mid-lease (no goodbye — the lease is live
// and being renewed by heartbeats when the process dies), and asserts the
// paper's CP-tier contract: a successor takes over within 10 election
// timeouts, and every write acked before the kill is still readable —
// exact bytes — through the new leader.
func TestStrongFailoverAcrossLeaderKill(t *testing.T) {
	const et = 100 * time.Millisecond
	c := startTestCluster(t, ClusterOptions{
		Nodes:                 5,
		StrongRanges:          4,
		StrongElectionTimeout: et,
	})
	client, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Find a key whose range is led by a node other than 0, so the client's
	// bootstrap contact outlives the kill.
	var probe string
	victim := -1
	for k := 0; victim < 0 && k < 256; k++ {
		probe = fmt.Sprintf("fo-%d", k)
		if err := client.StrongPut(ctx, probe, []byte("pre")); err != nil {
			t.Fatalf("StrongPut %s: %v", probe, err)
		}
		for i, node := range c.Nodes() {
			if i > 0 && node.Consensus().LeadsKey(probe) {
				victim = i
			}
		}
	}
	if victim < 0 {
		t.Fatal("no consensus range led away from node 0")
	}

	// The acked set the failover must preserve.
	const writes = 40
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("%s-acked-%02d", probe, i)
		if err := client.StrongPut(ctx, key, []byte(key)); err != nil {
			t.Fatalf("StrongPut %s: %v", key, err)
		}
	}

	if err := c.KillNode(victim); err != nil {
		t.Fatalf("KillNode(%d): %v", victim, err)
	}
	killed := time.Now()

	// Strong writes to the dead leader's range must come back once a
	// successor wins the election — within the contract's 10 ETs.
	deadline := killed.Add(10 * et)
	for {
		opCtx, cancel := context.WithTimeout(ctx, 4*et)
		err := client.StrongPut(opCtx, probe, []byte("post"))
		cancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("strong writes still failing %v after leader kill (limit %v): %v",
				time.Since(killed), 10*et, err)
		}
	}
	if d := time.Since(killed); d > 10*et {
		t.Fatalf("failover took %v, want < %v", d, 10*et)
	}

	// A different node now leads the range.
	for i, node := range c.Nodes() {
		if i == victim {
			continue
		}
		if node.Consensus().LeadsKey(probe) {
			victim = -1 // someone else leads; contract satisfied
		}
	}
	if victim != -1 {
		t.Error("no surviving node reports leading the killed leader's range")
	}

	// No acked strong write is missing or altered. The acked keys hash
	// across every consensus range, and ranges the dead node also led run
	// their own elections on their own failure-detection clocks — so each
	// read retries within a generous post-heal window; only the value is
	// non-negotiable.
	readDeadline := time.Now().Add(30 * et)
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("%s-acked-%02d", probe, i)
		strongGetEventually(t, client, key, key, readDeadline)
	}
	strongGetEventually(t, client, probe, "post", readDeadline)
}

// strongGetEventually strong-reads key until it succeeds (retrying while
// the key's range is electing) or deadline passes; the value must match
// exactly on the first successful read — a wrong value is never excused.
func strongGetEventually(t *testing.T, client *Client, key, want string, deadline time.Time) {
	t.Helper()
	for {
		opCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		got, err := client.StrongGet(opCtx, key)
		cancel()
		if err == nil {
			if string(got) != want {
				t.Fatalf("StrongGet %s = %q, want %q", key, got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("StrongGet %s never succeeded after failover: %v", key, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
