package mystore_test

// TestObsSmoke is the observability smoke test `make obs-smoke` runs: it
// boots a full gateway over an in-process durable cluster, drives traffic
// through the HTTP front end, then scrapes /metrics and asserts every
// required metric family — spanning the gateway, dispatch, cache, WAL, NWR,
// gossip, resilience and transport subsystems — is exported, that /stats
// kept its historical JSON keys, and that /debug/traces serves the traffic's
// traces.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mystore"
)

func TestObsSmoke(t *testing.T) {
	cl, err := mystore.StartCluster(mystore.ClusterOptions{
		Nodes:         5,
		DataDir:       t.TempDir(),
		Durable:       true,
		StorageEngine: "lsm",
		StrongRanges:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}

	reg := mystore.NewMetricsRegistry()
	cl.RegisterMetrics(reg)
	gw := mystore.NewGateway(mystore.ClusterBackend{Client: client}, mystore.GatewayOptions{
		CacheServers: 2,
		CacheBytes:   8 << 20,
		Metrics:      reg,
		Trace:        mystore.NewTraceCollector(time.Minute),
	})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	// Traffic: puts, a cache-hit get, and a miss, so counters and histograms
	// all have observations.
	for i := 0; i < 5; i++ {
		resp, err := http.Post(fmt.Sprintf("%s/data/key-%d", srv.URL, i),
			"application/octet-stream", strings.NewReader(strings.Repeat("x", 512)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST key-%d: status %d", i, resp.StatusCode)
		}
	}
	for _, key := range []string{"key-0", "key-1", "no-such-key"} {
		resp, err := http.Get(srv.URL + "/data/" + key)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}

	// Strong traffic through the CP tier, so the consensus families have
	// observations: a linearizable write then a leader-local read.
	resp, err := http.Post(srv.URL+"/data/strong-key?consistency=strong",
		"application/octet-stream", strings.NewReader("strong-value"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("strong POST: status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/data/strong-key?consistency=strong")
	if err != nil {
		t.Fatal(err)
	}
	val, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(val) != "strong-value" {
		t.Fatalf("strong GET: status %d, body %q", resp.StatusCode, val)
	}
	if resp.Header.Get("X-Cache") != "bypass" {
		t.Errorf("strong GET X-Cache = %q, want bypass", resp.Header.Get("X-Cache"))
	}

	// /metrics must export every required family.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	page := string(body)
	required := []string{
		// gateway
		"mystore_gateway_requests_total",
		"mystore_gateway_request_seconds",
		// dispatch
		"mystore_dispatch_dispatched_total",
		"mystore_dispatch_queue_wait_seconds",
		// cache
		"mystore_cache_hits_total",
		"mystore_cache_misses_total",
		// wal
		"mystore_wal_appends_total",
		"mystore_wal_fsyncs_total",
		"mystore_wal_fsync_seconds",
		"mystore_wal_batch_records",
		"mystore_wal_replay_ops_total",
		// lsm storage engine
		"mystore_lsm_memtable_bytes",
		"mystore_lsm_flushes_total",
		"mystore_lsm_sstables",
		"mystore_lsm_sstables_level",
		"mystore_lsm_compaction_read_bytes_total",
		"mystore_lsm_compaction_written_bytes_total",
		"mystore_lsm_block_cache_hits_total",
		"mystore_lsm_block_cache_misses_total",
		"mystore_lsm_bloom_negatives_total",
		// nwr
		"mystore_nwr_puts_total",
		"mystore_nwr_put_seconds",
		"mystore_hints_queued",
		// store + gossip
		"mystore_store_documents",
		"mystore_gossip_live_peers",
		// repair (Merkle anti-entropy + streamed transfer)
		"mystore_ae_rounds_total",
		"mystore_ae_digest_bytes_total",
		"mystore_ae_version_regressions_total",
		"mystore_stream_bytes_total",
		"mystore_stream_throttle_wait_seconds_total",
		// resilience
		"mystore_breaker_open",
		// transport
		"mystore_rpc_seconds",
		"mystore_transport_deadline_dropped_total",
		// consensus (CP tier)
		"mystore_consensus_ranges_led",
		"mystore_consensus_elections_total",
		"mystore_consensus_elections_won_total",
		"mystore_consensus_proposals_total",
		"mystore_consensus_commits_total",
		"mystore_consensus_applies_total",
		"mystore_consensus_strong_reads_total",
		"mystore_consensus_propose_seconds",
	}
	for _, fam := range required {
		if !strings.Contains(page, "# TYPE "+fam+" ") {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	// Observations actually flowed: the WAL appended and the gateway
	// histogram counted every request.
	if !strings.Contains(page, "mystore_gateway_request_seconds_count 10") {
		t.Errorf("request histogram did not count 10 requests:\n%s", grepLines(page, "mystore_gateway_request_seconds_count"))
	}
	if strings.Contains(page, "mystore_cache_hits_total") && !strings.Contains(page, `mystore_cache_hits_total{server=`) {
		t.Error("cache hits not labeled by server")
	}

	// /stats keeps its historical keys and folds in the registry snapshot.
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests", "cacheHits", "workers", "completed", "mystore_wal_appends_total"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing key %q", key)
		}
	}

	// /debug/traces serves the traffic's traces.
	resp, err = http.Get(srv.URL + "/debug/traces?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var traces []map[string]any
	err = json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Error("/debug/traces returned no traces after traffic")
	}
}

// grepLines returns the lines of page containing substr (test diagnostics).
func grepLines(page, substr string) string {
	var out []string
	for _, line := range strings.Split(page, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
