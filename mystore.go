// Package mystore is the public API of MyStore, a highly available
// distributed storage system for unstructured data: a Dynamo-style layer —
// consistent hashing with virtual nodes, NWR quorum replication, push-pull
// gossip, hinted handoff — over a clustered MongoDB-like document store,
// with MongoDB-grade query capability retained.
//
// Two deployment styles are supported:
//
//   - In-process clusters (StartCluster) run every node inside one process
//     over a simulated network. Examples, tests and the paper-reproduction
//     benchmarks use this form: it is deterministic and laptop-scale.
//   - Networked clusters (ListenNode + Connect) run each node as a TCP
//     server, which is what cmd/mystore-server and cmd/mystore-cli drive.
//
// A minimal session:
//
//	cl, _ := mystore.StartCluster(mystore.ClusterOptions{Nodes: 5})
//	defer cl.Close()
//	client, _ := cl.Client()
//	client.Put(ctx, "Resistor5", []byte("<component .../>"))
//	val, _ := client.Get(ctx, "Resistor5")
package mystore

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mystore/internal/bson"
	"mystore/internal/cluster"
	"mystore/internal/docstore"
	"mystore/internal/lsm"
	"mystore/internal/metrics"
	"mystore/internal/nwr"
	"mystore/internal/trace"
	"mystore/internal/transport"
	"mystore/internal/wal"
)

// Re-exported document and query types, so applications need only this
// package.
type (
	// Document is an ordered BSON document.
	Document = bson.D
	// E is one document element.
	E = bson.E
	// A is a BSON array value.
	A = bson.A
	// Filter is a query filter in the MongoDB shell dialect
	// ($eq/$ne/$gt/$gte/$lt/$lte/$in/$nin/$exists/$regex/$and/$or/$not).
	Filter = docstore.Filter
	// FindOptions shape query results (sort, skip, limit, projection).
	FindOptions = docstore.FindOptions
	// SortField names a sort key and direction.
	SortField = docstore.SortField
	// QueryResult is one distributed-query match.
	QueryResult = cluster.QueryResult
	// GroupSpec describes a distributed aggregation (group-by field plus
	// accumulators).
	GroupSpec = docstore.GroupSpec
	// AccumulatorSpec is one aggregation output.
	AccumulatorSpec = docstore.AccumulatorSpec
	// Client performs Put/Get/Delete/Query against a cluster.
	Client = cluster.Client
	// ClientOptions carry connection parameters (timeouts, auto-retry).
	ClientOptions = cluster.ClientOptions
	// Node is one storage node.
	Node = cluster.Node
	// MetricsRegistry is the central metric catalog subsystems register
	// into; serve it at /metrics via GatewayOptions.Metrics.
	MetricsRegistry = metrics.Registry
	// TraceCollector gathers per-request traces; install it via
	// GatewayOptions.Trace and read it back at /debug/traces.
	TraceCollector = trace.Collector
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewTraceCollector returns a trace collector. Traces at least slowThreshold
// long are additionally written to the slow-op log; zero disables the log
// but still collects traces.
func NewTraceCollector(slowThreshold time.Duration) *TraceCollector {
	return trace.NewCollector(trace.Config{SlowThreshold: slowThreshold})
}

// Aggregation accumulator kinds, re-exported for GroupSpec construction.
const (
	AccCount = docstore.AccCount
	AccSum   = docstore.AccSum
	AccAvg   = docstore.AccAvg
	AccMin   = docstore.AccMin
	AccMax   = docstore.AccMax
)

// ClusterOptions configure an in-process cluster.
type ClusterOptions struct {
	// Nodes is the cluster size. The paper's testbed uses 5.
	Nodes int
	// SeedCount is how many of the first nodes act as gossip seeds
	// (default 1, matching the paper's one seed DB node).
	SeedCount int
	// N, W, R are the replication factor and quorums (default 3, 2, 1 —
	// the paper's evaluation setting).
	N, W, R int
	// Weights, when non-nil, returns the capacity weight for node i
	// (default: all 1).
	Weights func(i int) int
	// LatencyBase and Bandwidth shape the simulated LAN: per-message
	// latency plus size/bandwidth transfer time. Zero base means no
	// simulated latency.
	LatencyBase time.Duration
	Bandwidth   float64 // bytes per second; 0 means infinite
	// GossipInterval is the background tick period (default 200ms for
	// in-process clusters).
	GossipInterval time.Duration
	// DataDir, when set, persists node stores under DataDir/node-<i>.
	DataDir string
	// Durable makes every store mutation fsync before acknowledging
	// (wal SyncEveryAppend). Only meaningful with DataDir. Concurrent
	// writers share fsyncs through WAL group commit.
	Durable bool
	// DisableGroupCommit reverts durable appends to one fsync each
	// (write-path ablation).
	DisableGroupCommit bool
	// SerializeWritePath reverts node stores to the single-lock write path
	// (write-path ablation).
	SerializeWritePath bool
	// DisableHints turns hinted handoff off (ablation benches).
	DisableHints bool
	// DegradedReads lets a coordinator answer a read from fewer than R
	// replicas (flagged stale) instead of failing when quorum is
	// unreachable.
	DegradedReads bool
	// ReplicaCallTimeout bounds each replica RPC (default 2s). Chaos and
	// fault experiments shorten it so dead peers are detected quickly.
	ReplicaCallTimeout time.Duration
	// DisableBreakers leaves the per-peer circuit breakers unwired
	// (resilience ablation).
	DisableBreakers bool
	// DisableReadHedge keeps the N−R non-primary replica reads parked until
	// the quorum settles or a primary fails — no hedge timer (read-path
	// ablation).
	DisableReadHedge bool
	// DisableReadCoalesce turns the per-key singleflight read coalescer off
	// (read-path ablation).
	DisableReadCoalesce bool
	// WaitForAllReads restores the seed read path: every read waits for all
	// N replicas before answering (read-path ablation baseline).
	WaitForAllReads bool
	// ReadHedgeDelay overrides the adaptive hedge delay (default: the
	// coordinator's recent p95 read latency, floor 1ms).
	ReadHedgeDelay time.Duration
	// Seed, when non-zero, seeds every node's background RNG (anti-entropy
	// peer selection) with Seed+i, making repair schedules reproducible.
	Seed int64
	// DisableMerkleAE reverts anti-entropy to the flat per-record digest
	// exchange (repair ablation baseline).
	DisableMerkleAE bool
	// DisableStreamTransfer reverts repair data movement to one RPC per
	// record (repair ablation baseline).
	DisableStreamTransfer bool
	// RepairBandwidth caps streamed repair traffic per node, in bytes/sec
	// (token bucket; 0 means unthrottled).
	RepairBandwidth int64
	// StreamBatchBytes bounds one streamed batch (default 256 KiB).
	StreamBatchBytes int
	// StorageEngine selects each node's local storage engine: "map"
	// (default — every decoded document held in memory, full WAL replay on
	// restart) or "lsm" (documents in log-structured SSTables behind a
	// memtable; resident memory is bounded by the memtable and block-cache
	// budgets, and the WAL is checkpointed on every flush so restart
	// replays only the unflushed tail). "lsm" requires DataDir.
	StorageEngine string
	// MemtableBytes sizes the lsm write buffer per node (default 4 MiB).
	MemtableBytes int64
	// BlockCacheBytes sizes the lsm block cache per node (default 32 MiB).
	BlockCacheBytes int64
	// CompactionBandwidth caps lsm background compaction I/O per node, in
	// bytes/sec (token bucket; 0 means unthrottled).
	CompactionBandwidth int64
	// StrongRanges, when > 0, turns on the CP replication tier: the ring's
	// hash space is split into this many contiguous ranges, each replicated
	// through a leader-leased consensus log. Requests then choose per call:
	// eventual (default, NWR quorums) or strong (linearizable through the
	// range leader). 0 leaves the tier off.
	StrongRanges int
	// StrongElectionTimeout is the consensus election timeout (default
	// 150ms); heartbeats run at a third of it and leader leases are clamped
	// to at most one timeout.
	StrongElectionTimeout time.Duration
	// StrongLeaseDuration bounds how long a leader serves local strong
	// reads after its latest quorum round trip (default: the election
	// timeout).
	StrongLeaseDuration time.Duration
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.Nodes <= 0 {
		o.Nodes = 5
	}
	if o.SeedCount <= 0 {
		o.SeedCount = 1
	}
	if o.SeedCount > o.Nodes {
		o.SeedCount = o.Nodes
	}
	if o.N <= 0 {
		o.N = 3
	}
	if o.W <= 0 {
		o.W = 2
	}
	if o.R <= 0 {
		o.R = 1
	}
	if o.GossipInterval <= 0 {
		o.GossipInterval = 200 * time.Millisecond
	}
	return o
}

// Cluster is an in-process MyStore cluster.
type Cluster struct {
	opts ClusterOptions
	net  *transport.MemNetwork

	mu    sync.Mutex // guards eps, nodes, addrs against AddNode
	eps   []*transport.MemTransport
	nodes []*cluster.Node
	addrs []string

	seeds []string
	stop  context.CancelFunc
	done  chan struct{}
}

// members returns a consistent snapshot of the cluster's endpoints and
// nodes.
func (c *Cluster) members() ([]*transport.MemTransport, []*cluster.Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*transport.MemTransport(nil), c.eps...),
		append([]*cluster.Node(nil), c.nodes...)
}

// StartCluster boots an in-process cluster, runs gossip in the background
// and waits briefly for membership to converge.
func StartCluster(opts ClusterOptions) (*Cluster, error) {
	opts = opts.withDefaults()
	c := &Cluster{
		opts: opts,
		net:  transport.NewMemNetwork(),
		done: make(chan struct{}),
	}
	if opts.LatencyBase > 0 || opts.Bandwidth > 0 {
		c.net.SetLatencyModel(transport.LANLatency(opts.LatencyBase, opts.Bandwidth))
	}
	for i := 0; i < opts.Nodes; i++ {
		c.addrs = append(c.addrs, nodeAddr(i))
	}
	c.seeds = append(c.seeds, c.addrs[:opts.SeedCount]...)
	for i := 0; i < opts.Nodes; i++ {
		if _, err := c.startNode(i); err != nil {
			c.Close()
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	go c.run(ctx)
	c.WaitConverged(5 * time.Second)
	return c, nil
}

func nodeAddr(i int) string { return fmt.Sprintf("10.0.0.%d:19870", i+1) }

func (c *Cluster) nodeConfig(i int) cluster.Config {
	weight := 1
	if c.opts.Weights != nil {
		if w := c.opts.Weights(i); w > 0 {
			weight = w
		}
	}
	dir := ""
	if c.opts.DataDir != "" {
		dir = fmt.Sprintf("%s/node-%d", c.opts.DataDir, i)
	}
	seed := int64(0)
	if c.opts.Seed != 0 {
		seed = c.opts.Seed + int64(i)
	}
	return cluster.Config{
		Seeds:  c.seeds,
		Weight: weight,
		NWR: nwr.Config{
			N: c.opts.N, W: c.opts.W, R: c.opts.R,
			DisableHints:    c.opts.DisableHints,
			DegradedReads:   c.opts.DegradedReads,
			CallTimeout:     c.opts.ReplicaCallTimeout,
			DisableHedge:    c.opts.DisableReadHedge,
			DisableCoalesce: c.opts.DisableReadCoalesce,
			WaitForAllReads: c.opts.WaitForAllReads,
			HedgeDelay:      c.opts.ReadHedgeDelay,
		},
		DisableBreakers:       c.opts.DisableBreakers,
		Seed:                  seed,
		StrongRanges:          c.opts.StrongRanges,
		StrongElectionTimeout: c.opts.StrongElectionTimeout,
		StrongLeaseDuration:   c.opts.StrongLeaseDuration,
		DisableMerkleAE:       c.opts.DisableMerkleAE,
		DisableStreamTransfer: c.opts.DisableStreamTransfer,
		RepairBandwidth:       c.opts.RepairBandwidth,
		StreamBatchBytes:      c.opts.StreamBatchBytes,
		StoreDir:              dir,
		Store: docstore.Options{
			WAL: wal.Options{
				SyncEveryAppend: c.opts.Durable,
				GroupCommit:     wal.GroupCommit{Disable: c.opts.DisableGroupCommit},
			},
			SerializeWritePath: c.opts.SerializeWritePath,
			Engine:             c.opts.StorageEngine,
			Storage: lsm.Tuning{
				MemtableBytes:       c.opts.MemtableBytes,
				BlockCacheBytes:     c.opts.BlockCacheBytes,
				CompactionBandwidth: c.opts.CompactionBandwidth,
			},
		},
		GossipInterval: c.opts.GossipInterval,
	}
}

func (c *Cluster) startNode(i int) (*cluster.Node, error) {
	ep, err := c.net.Endpoint(c.addrs[i])
	if err != nil {
		return nil, err
	}
	node, err := cluster.NewNode(ep, c.nodeConfig(i))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.eps = append(c.eps, ep)
	c.nodes = append(c.nodes, node)
	c.mu.Unlock()
	return node, nil
}

// run ticks every live node until the cluster closes.
func (c *Cluster) run(ctx context.Context) {
	defer close(c.done)
	t := time.NewTicker(c.opts.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			eps, nodes := c.members()
			for i, n := range nodes {
				if !eps[i].Closed() {
					n.Tick(ctx)
				}
			}
		}
	}
}

// WaitConverged blocks until every live node's ring contains every live
// node, or the timeout passes. It returns whether convergence was reached.
func (c *Cluster) WaitConverged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		eps, nodes := c.members()
		live := 0
		for i := range nodes {
			if !eps[i].Closed() {
				live++
			}
		}
		converged := true
		for i, n := range nodes {
			if eps[i].Closed() {
				continue
			}
			if n.Ring().Len() < live {
				converged = false
				break
			}
		}
		if converged {
			return true
		}
		time.Sleep(c.opts.GossipInterval / 2)
	}
	return false
}

// Client connects a new client to the cluster, performing the paper's
// connection test against the nodes.
func (c *Cluster) Client() (*Client, error) {
	return c.ClientWithOptions(cluster.ClientOptions{AutoRetry: true})
}

// ClientWithOptions connects a client with explicit options (retry policy,
// breakers, timeouts).
func (c *Cluster) ClientWithOptions(opts ClientOptions) (*Client, error) {
	ep, err := c.net.Endpoint(fmt.Sprintf("client-%d:0", len(c.net.Addresses())))
	if err != nil {
		return nil, err
	}
	return cluster.Connect(context.Background(), ep, c.Addrs(), opts)
}

// Addrs returns the node addresses.
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.addrs...)
}

// Nodes returns the node handles (inspection, stats).
func (c *Cluster) Nodes() []*cluster.Node {
	_, nodes := c.members()
	return nodes
}

// RegisterMetrics adds every node's subsystem metrics (WAL, store, NWR,
// gossip, breakers, transport) to r, one labeled source per node. Call it
// once after StartCluster; nodes added later register via their own
// RegisterMetrics.
func (c *Cluster) RegisterMetrics(r *MetricsRegistry) {
	for _, n := range c.Nodes() {
		n.RegisterMetrics(r)
	}
}

// Network exposes the simulated network for fault injection.
func (c *Cluster) Network() *transport.MemNetwork { return c.net }

// StopNode simulates a breakdown of node i: it stops answering and
// originating traffic but keeps its data.
func (c *Cluster) StopNode(i int) {
	eps, _ := c.members()
	if i >= 0 && i < len(eps) {
		eps[i].Close()
	}
}

// RestartNode brings a stopped node back online with its data intact.
func (c *Cluster) RestartNode(i int) {
	eps, _ := c.members()
	if i >= 0 && i < len(eps) {
		eps[i].Reopen()
	}
}

// CrashNode simulates a hard process crash of node i: the node stops
// serving and its store is torn down. With a DataDir configured its WAL and
// snapshot stay on disk, so RestartNodeFresh can recover it; without one
// the node's local data is gone, exactly as a crashed diskless process.
func (c *Cluster) CrashNode(i int) error {
	eps, nodes := c.members()
	if i < 0 || i >= len(nodes) {
		return fmt.Errorf("mystore: no node %d", i)
	}
	eps[i].Close()
	return nodes[i].Close()
}

// KillNode simulates a kill -9 of node i: the process vanishes mid-flight.
// Unlike CrashNode, nothing is closed cleanly — in-flight memtable flushes
// and compactions are abandoned torn on disk and no fsync happens on the
// way down. The store directory is left exactly as a hard crash leaves it;
// RestartNodeFresh must recover from that alone.
func (c *Cluster) KillNode(i int) error {
	eps, nodes := c.members()
	if i < 0 || i >= len(nodes) {
		return fmt.Errorf("mystore: no node %d", i)
	}
	eps[i].Close()
	nodes[i].Kill()
	return nil
}

// RestartNodeFresh boots a brand-new node process in place of a crashed
// node i: same address, same store directory. State is rebuilt by WAL
// replay (plus snapshot load) from the directory, then gossip re-admits the
// node and parked hints flow back — the recovery path of paper §5.2.
// Optional configure hooks run on the new node before it starts serving
// (fault-injection experiments re-attach their instrumentation here).
func (c *Cluster) RestartNodeFresh(i int, configure ...func(*Node)) (*Node, error) {
	c.mu.Lock()
	if i < 0 || i >= len(c.nodes) {
		c.mu.Unlock()
		return nil, fmt.Errorf("mystore: no node %d", i)
	}
	ep := c.eps[i]
	c.mu.Unlock()
	// Build the replacement while the endpoint is still closed (NewNode makes
	// no outbound calls), configure it, swap it in, then reopen the wire —
	// so neither the gossip ticker nor peers ever reach the node before it
	// is fully assembled.
	node, err := cluster.NewNode(ep, c.nodeConfig(i))
	if err != nil {
		return nil, err
	}
	for _, fn := range configure {
		fn(node)
	}
	c.mu.Lock()
	c.nodes[i] = node
	c.mu.Unlock()
	ep.Reopen()
	return node, nil
}

// AddNode grows the cluster by one node at runtime; gossip spreads the
// membership and data migrates on subsequent ticks.
func (c *Cluster) AddNode() (*Node, error) {
	c.mu.Lock()
	i := len(c.nodes)
	c.addrs = append(c.addrs, nodeAddr(i))
	c.mu.Unlock()
	return c.startNode(i)
}

// Close shuts every node down.
func (c *Cluster) Close() error {
	if c.stop != nil {
		c.stop()
		<-c.done
	}
	_, nodes := c.members()
	var first error
	for _, n := range nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- networked deployments ---

// NodeOptions configure a networked node.
type NodeOptions struct {
	// Seeds are the addresses of the cluster's seed nodes.
	Seeds []string
	// Weight is the node's capacity weight (default 1).
	Weight int
	// N, W, R are the replication settings (default 3, 2, 1).
	N, W, R int
	// DataDir persists the store; empty means in-memory.
	DataDir string
	// Durable fsyncs every mutation before acknowledging (group-committed).
	Durable bool
	// StorageEngine selects the local engine: "map" (default) or "lsm"
	// (requires DataDir). See ClusterOptions.StorageEngine.
	StorageEngine string
	// MemtableBytes sizes the lsm write buffer (default 4 MiB).
	MemtableBytes int64
	// BlockCacheBytes sizes the lsm block cache (default 32 MiB).
	BlockCacheBytes int64
	// CompactionBandwidth caps lsm compaction I/O in bytes/sec (0 =
	// unthrottled).
	CompactionBandwidth int64
	// StrongRanges, when > 0, turns on the CP replication tier. See
	// ClusterOptions.StrongRanges.
	StrongRanges int
	// StrongElectionTimeout is the consensus election timeout (default
	// 150ms).
	StrongElectionTimeout time.Duration
	// StrongLeaseDuration bounds leader-local strong reads (default: the
	// election timeout).
	StrongLeaseDuration time.Duration
	// GossipInterval defaults to 1s.
	GossipInterval time.Duration
	// Tracer, when non-nil, is the node-local trace collector incoming
	// requests join their on-wire trace ids against.
	Tracer *TraceCollector
}

// ListenNode starts a networked storage node serving on addr and begins
// its background loop. Stop it with its Close method after cancelling ctx.
func ListenNode(ctx context.Context, addr string, opts NodeOptions) (*Node, error) {
	tr, err := transport.ListenTCP(addr, transport.TCPOptions{})
	if err != nil {
		return nil, err
	}
	if opts.N <= 0 {
		opts.N = 3
	}
	if opts.W <= 0 {
		opts.W = 2
	}
	if opts.R <= 0 {
		opts.R = 1
	}
	node, err := cluster.NewNode(tr, cluster.Config{
		Seeds:    opts.Seeds,
		Weight:   opts.Weight,
		NWR:      nwr.Config{N: opts.N, W: opts.W, R: opts.R},
		StoreDir: opts.DataDir,
		Store: docstore.Options{
			WAL:    wal.Options{SyncEveryAppend: opts.Durable},
			Engine: opts.StorageEngine,
			Storage: lsm.Tuning{
				MemtableBytes:       opts.MemtableBytes,
				BlockCacheBytes:     opts.BlockCacheBytes,
				CompactionBandwidth: opts.CompactionBandwidth,
			},
		},
		StrongRanges:          opts.StrongRanges,
		StrongElectionTimeout: opts.StrongElectionTimeout,
		StrongLeaseDuration:   opts.StrongLeaseDuration,
		GossipInterval:        opts.GossipInterval,
		Tracer:                opts.Tracer,
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	go node.RunLoop(ctx)
	return node, nil
}

// Connect dials a networked cluster from this process, running the
// connection test against the given node addresses.
func Connect(ctx context.Context, nodes []string, opts ClientOptions) (*Client, error) {
	tr, err := transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{})
	if err != nil {
		return nil, err
	}
	return cluster.Connect(ctx, tr, nodes, opts)
}
