module mystore

go 1.22
