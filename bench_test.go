package mystore_test

// One testing.B benchmark per table/figure of the paper's evaluation
// (§6), plus the design-choice ablations. Each benchmark drives the same
// experiment code cmd/mystore-bench runs at full scale, shrunk to Quick
// scale so `go test -bench=.` terminates in minutes; custom metrics carry
// the figure's headline numbers (MB/s, req/s, hits/s...) into the bench
// output.
//
// Regenerate the full-scale tables with:
//
//	go run ./cmd/mystore-bench all

import (
	"context"
	"fmt"
	"testing"

	"mystore"
	"mystore/internal/experiments"
)

func BenchmarkFig11_ThreeSystemThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig11(experiments.Quick(), b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.MBPerSec, row.System+"_MB/s")
			b.ReportMetric(row.RPS, row.System+"_req/s")
		}
	}
}

func BenchmarkFig12_TTFBTTLBByResourceType(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12(experiments.Quick(), b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.MeanTTLBms, row.System+"_"+row.Class+"_TTLBms")
		}
	}
}

func BenchmarkFig13_TTFBvsProcesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.MeanTTFBms, fmt.Sprintf("p%d_TTFBms", row.Processes))
		}
	}
}

func BenchmarkFig14_ThroughputVsProcesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.RPS, fmt.Sprintf("p%d_req/s", row.Processes))
		}
	}
}

func BenchmarkFig15_ReplicaBalance(b *testing.B) {
	scale := experiments.Quick()
	scale.PutItems = 1000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig15(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpreadPct, "spread_%")
		b.ReportMetric(float64(res.Total), "replicas")
	}
}

func BenchmarkFig16_PutRateFaultVsNoFault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig16(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NoFaultMeanHits, "nofault_hits/s")
		b.ReportMetric(res.FaultMeanHits, "fault_hits/s")
	}
}

func BenchmarkFig17_PutLatencyDistribution(b *testing.B) {
	scale := experiments.Quick()
	scale.PutItems = 200
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig17(scale)
		if err != nil {
			b.Fatal(err)
		}
		mid := len(experiments.Fig17Thresholds) / 2
		b.ReportMetric(float64(res.MyStoreNoFault[mid]), "nofault_mid")
		b.ReportMetric(float64(res.MyStoreFault[mid]), "fault_mid")
		b.ReportMetric(float64(res.MasterSlave[mid]), "masterslave_mid")
	}
}

func BenchmarkContext_LoadAndReadScalars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunContext(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LoadMBPerSec, "load_MB/s")
		b.ReportMetric(res.ReadMBPerSec, "read_MB/s")
	}
}

func BenchmarkAblation_All(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblations(experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.VNodes.ConsistentMovePct, "consistent_move_%")
		b.ReportMetric(res.VNodes.ModNMovePct, "modN_move_%")
		b.ReportMetric(res.Hints.WithHintsPct, "hints_ok_%")
		b.ReportMetric(res.Hints.WithoutHintsPct, "nohints_ok_%")
		for _, row := range res.WritePath.Store {
			switch row.Config {
			case "full (gc + lock split)":
				b.ReportMetric(row.OpsPerSec, "wp_full_puts/s")
				b.ReportMetric(row.FsyncsPerOp, "wp_full_fsyncs/op")
			case "seed (neither)":
				b.ReportMetric(row.OpsPerSec, "wp_seed_puts/s")
			}
		}
		b.ReportMetric(res.WritePath.MuxRPS, "mux_req/s")
		b.ReportMetric(res.WritePath.LegacyRPS, "legacy_req/s")
	}
}

// Micro-benchmarks of the public API hot paths.

func benchCluster(b *testing.B) (*mystore.Cluster, *mystore.Client) {
	b.Helper()
	cl, err := mystore.StartCluster(mystore.ClusterOptions{Nodes: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	client, err := cl.Client()
	if err != nil {
		b.Fatal(err)
	}
	return cl, client
}

func BenchmarkClusterPut4KB(b *testing.B) {
	_, client := benchCluster(b)
	payload := make([]byte, 4<<10)
	ctx := context.Background()
	b.SetBytes(4 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Put(ctx, fmt.Sprintf("bench-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterGet4KB(b *testing.B) {
	_, client := benchCluster(b)
	payload := make([]byte, 4<<10)
	ctx := context.Background()
	const keys = 512
	for i := 0; i < keys; i++ {
		if err := client.Put(ctx, fmt.Sprintf("bench-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Get(ctx, fmt.Sprintf("bench-%d", i%keys)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterQueryRegex(b *testing.B) {
	_, client := benchCluster(b)
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if err := client.PutDoc(ctx, fmt.Sprintf("doc-%03d", i), mystore.Document{
			{Key: "n", Value: int64(i)},
		}); err != nil {
			b.Fatal(err)
		}
	}
	filter := mystore.Filter{{Key: "self-key", Value: mystore.Document{{Key: "$regex", Value: "^doc-00"}}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Query(ctx, filter, mystore.FindOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
