package mystore_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mystore"
	"mystore/internal/auth"
)

// TestFullStackUnderChurn drives the complete paper Fig 1 stack — REST
// gateway with URI signatures and cache tier, logical worker pool, 5-node
// storage cluster — with concurrent HTTP clients while a storage node
// bounces. Every acknowledged write must remain readable.
func TestFullStackUnderChurn(t *testing.T) {
	cl, err := mystore.StartCluster(mystore.ClusterOptions{
		Nodes:          5,
		GossipInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}

	tokens := mystore.NewTokenDB()
	secret, err := tokens.Register("frontend")
	if err != nil {
		t.Fatal(err)
	}
	gw := mystore.NewGateway(mystore.ClusterBackend{Client: client}, mystore.GatewayOptions{
		CacheServers: 2,
		CacheBytes:   16 << 20,
		Auth:         tokens,
		Workers:      16,
	})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	sign := func(t *testing.T, uri string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/token?user=frontend")
		if err != nil {
			t.Fatal(err)
		}
		tok, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		authorized, err := auth.AuthorizeURI(uri, string(tok), secret)
		if err != nil {
			t.Fatal(err)
		}
		return srv.URL + authorized
	}

	// Churn: bounce node 3 mid-run.
	stopChurn := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 3; i++ {
			select {
			case <-stopChurn:
				return
			case <-time.After(80 * time.Millisecond):
			}
			cl.StopNode(3)
			select {
			case <-stopChurn:
				cl.RestartNode(3)
				return
			case <-time.After(80 * time.Millisecond):
			}
			cl.RestartNode(3)
		}
	}()

	const writers, perWriter = 6, 15
	var mu sync.Mutex
	written := map[string]string{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("stack-%d-%d", w, i)
				val := fmt.Sprintf("value-%d-%d", w, i)
				resp, err := http.Post(sign(t, "/data/"+key), "application/octet-stream",
					strings.NewReader(val))
				if err != nil {
					t.Errorf("POST %s: %v", key, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					continue // overload shedding is allowed; unacked writes carry no promise
				}
				mu.Lock()
				written[key] = val
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(stopChurn)
	<-churnDone
	cl.RestartNode(3)
	if !cl.WaitConverged(5 * time.Second) {
		t.Fatal("cluster did not re-converge after churn")
	}

	// Every acknowledged write must be readable through the stack.
	mu.Lock()
	defer mu.Unlock()
	if len(written) == 0 {
		t.Fatal("no writes were acknowledged")
	}
	for key, want := range written {
		resp, err := http.Get(sign(t, "/data/"+key))
		if err != nil {
			t.Fatalf("GET %s: %v", key, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", key, resp.StatusCode)
		}
		if string(body) != want {
			t.Fatalf("GET %s = %q, want %q", key, body, want)
		}
	}
	t.Logf("verified %d acknowledged writes across churn", len(written))
}

// TestDistributedQueryThroughStack checks query consistency seen through a
// fresh client while writes arrive through another.
func TestDistributedQueryThroughStack(t *testing.T) {
	cl, err := mystore.StartCluster(mystore.ClusterOptions{Nodes: 3, GossipInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	writer, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		doc := mystore.Document{
			{Key: "idx", Value: int64(i)},
			{Key: "shape", Value: []string{"circle", "square"}[i%2]},
		}
		if err := writer.PutDoc(ctx, fmt.Sprintf("q-%02d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	results, err := reader.Query(ctx, mystore.Filter{
		{Key: "doc.shape", Value: "circle"},
		{Key: "doc.idx", Value: mystore.Document{{Key: "$lt", Value: int64(10)}}},
	}, mystore.FindOptions{Sort: []mystore.SortField{{Field: "self-key"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 { // idx 0,2,4,6,8
		t.Fatalf("query = %d results, want 5", len(results))
	}
	for i, r := range results {
		want := fmt.Sprintf("q-%02d", i*2)
		if r.Key != want {
			t.Fatalf("results[%d] = %s, want %s", i, r.Key, want)
		}
	}
}
