// mystore-cli is the operator client: put/get/delete/query/status against
// a running cluster.
//
//	mystore-cli -nodes 10.0.0.1:19870 put mykey "payload"
//	mystore-cli -nodes 10.0.0.1:19870 get mykey
//	mystore-cli -nodes 10.0.0.1:19870 del mykey
//	mystore-cli -nodes 10.0.0.1:19870 query '^scene/'   # regex on self-key
//	mystore-cli -nodes 10.0.0.1:19870 status
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mystore"
)

func main() {
	nodes := flag.String("nodes", "127.0.0.1:19870", "comma-separated node addresses")
	timeout := flag.Duration("timeout", 10*time.Second, "operation timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var nodeList []string
	for _, s := range strings.Split(*nodes, ",") {
		if s = strings.TrimSpace(s); s != "" {
			nodeList = append(nodeList, s)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client, err := mystore.Connect(ctx, nodeList, mystore.ClientOptions{AutoRetry: true})
	if err != nil {
		log.Fatalf("connect: %v", err)
	}

	switch args[0] {
	case "put":
		if len(args) != 3 {
			usage()
		}
		if err := client.Put(ctx, args[1], []byte(args[2])); err != nil {
			log.Fatalf("put: %v", err)
		}
		fmt.Println("ok")
	case "get":
		if len(args) != 2 {
			usage()
		}
		val, err := client.Get(ctx, args[1])
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		os.Stdout.Write(val) //nolint:errcheck
		fmt.Println()
	case "del":
		if len(args) != 2 {
			usage()
		}
		if err := client.Delete(ctx, args[1]); err != nil {
			log.Fatalf("del: %v", err)
		}
		fmt.Println("ok")
	case "query":
		if len(args) != 2 {
			usage()
		}
		results, err := client.Query(ctx, mystore.Filter{
			{Key: "self-key", Value: mystore.Document{{Key: "$regex", Value: args[1]}}},
		}, mystore.FindOptions{Sort: []mystore.SortField{{Field: "self-key"}}})
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		for _, r := range results {
			fmt.Printf("%s\t%d bytes\n", r.Key, len(r.Val))
		}
		fmt.Printf("(%d results)\n", len(results))
	case "status":
		st, err := client.Status(ctx)
		if err != nil {
			log.Fatalf("status: %v", err)
		}
		fmt.Println(st)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mystore-cli [-nodes a,b,c] <command>
commands:
  put <key> <value>
  get <key>
  del <key>
  query <self-key regex>
  status`)
	os.Exit(2)
}
