// mystore-bench regenerates the paper's evaluation: every figure of §6,
// the §6.1 context scalars, a shortened soak, and the design-choice
// ablations. Results print in the same rows/series the paper reports.
//
// Usage:
//
//	mystore-bench [flags] <experiment>
//
// Experiments: fig11, fig12, fig13 (covers Fig 14 too), fig15, fig16,
// fig17, context, soak, chaos, ablate, read_path, repair, storage, all. The
// read_path experiment is the A8 study: read tail latency under one slow
// replica for the full quorum-first/hedged/coalesced path against each
// piece ablated, plus the hot-key coalescing bound. The repair experiment
// is the A9 study: crash recovery time, reconciliation metadata and bytes
// moved for Merkle anti-entropy with streamed transfer against the seed's
// flat digests with item-at-a-time movement, plus foreground read p99
// under bandwidth-throttled repair. The storage experiment is the A10
// study: restart cost with a checkpointed WAL vs full-history replay,
// resident heap for a dataset ~10x the memtable budget, and foreground
// read p99 during rate-limited background compaction. The consensus
// experiment is the A11 study: the write-latency cost of linearizable
// (consensus-replicated) puts against eventual quorum puts, lease-served
// leader-local strong reads against quorum reads, and strong-write downtime
// across a leader kill -9. The chaos experiment
// is the resilience gate: randomized Table 2 faults plus kill -9
// crash-restarts and partitions over lsm-engine nodes, exiting non-zero if
// any acked write is lost, any hint queue fails to drain, any request
// overruns its deadline by more than one replica call timeout, repair
// regresses any record version, or recovery loads a torn table.
//
// Flags:
//
//	-quick          run at smoke-test scale
//	-items N        override the put-experiment operation count
//	-read-items N   override the read-corpus size
//	-step D         override the per-run measurement window
//	-seed N         override the RNG seed
//	-json FILE      record headline numbers (MB/s, req/s, p95) per figure,
//	                merging into FILE so successive runs accumulate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mystore/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run at smoke-test scale")
	items := flag.Int("items", 0, "put-experiment operation count")
	readItems := flag.Int("read-items", 0, "read corpus size")
	step := flag.Duration("step", 0, "per-run measurement window")
	seed := flag.Int64("seed", 0, "RNG seed")
	jsonPath := flag.String("json", "", "merge per-figure results into this JSON file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mystore-bench [flags] fig11|fig12|fig13|fig15|fig16|fig17|context|soak|chaos|ablate|read_path|repair|storage|consensus|all")
		os.Exit(2)
	}

	scale := experiments.Scale{}
	if *quick {
		scale = experiments.Quick()
	}
	if *items > 0 {
		scale.PutItems = *items
	}
	if *readItems > 0 {
		scale.ReadItems = *readItems
	}
	if *step > 0 {
		scale.StepDuration = *step
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	which := flag.Arg(0)
	if which == "fig14" {
		which = "fig13" // one sweep produces both figures' series
	}
	run := func(name string, fn func() (fmt.Stringer, error)) {
		if which != name && which != "all" {
			return
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		if *jsonPath != "" {
			if err := recordJSON(*jsonPath, name, res); err != nil {
				fmt.Fprintf(os.Stderr, "%s: record %s: %v\n", name, *jsonPath, err)
				os.Exit(1)
			}
		}
	}

	tmp, err := os.MkdirTemp("", "mystore-bench-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmp)

	run("fig11", func() (fmt.Stringer, error) { return experiments.RunFig11(scale, tmp) })
	run("fig12", func() (fmt.Stringer, error) { return experiments.RunFig12(scale, tmp) })
	run("fig13", func() (fmt.Stringer, error) { return experiments.RunFig13(scale) })
	run("fig15", func() (fmt.Stringer, error) { return experiments.RunFig15(scale) })
	run("fig16", func() (fmt.Stringer, error) { return experiments.RunFig16(scale) })
	run("fig17", func() (fmt.Stringer, error) { return experiments.RunFig17(scale) })
	run("context", func() (fmt.Stringer, error) { return experiments.RunContext(scale) })
	run("soak", func() (fmt.Stringer, error) { return experiments.RunSoak(scale) })
	run("chaos", func() (fmt.Stringer, error) {
		res, err := experiments.RunChaos(scale, filepath.Join(tmp, "chaos"))
		if err == nil && res.Violations() > 0 {
			fmt.Println(res.String())
			err = fmt.Errorf("chaos: %d invariant violations", res.Violations())
		}
		return res, err
	})
	run("ablate", func() (fmt.Stringer, error) { return experiments.RunAblations(scale) })
	run("read_path", func() (fmt.Stringer, error) { return experiments.RunReadPathAblation(scale) })
	run("repair", func() (fmt.Stringer, error) { return experiments.RunRepairAblation(scale) })
	run("storage", func() (fmt.Stringer, error) {
		return experiments.RunStorageAblation(scale, filepath.Join(tmp, "storage"))
	})
	run("consensus", func() (fmt.Stringer, error) { return experiments.RunConsensusAblation(scale) })

	switch which {
	case "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "context", "soak", "chaos", "ablate", "read_path", "repair", "storage", "consensus", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", which)
		os.Exit(2)
	}
}

// recordJSON merges one experiment's summary into the results file under
// its figure id, preserving entries written by earlier runs.
func recordJSON(path, name string, res fmt.Stringer) error {
	summary := experiments.JSONSummary(res)
	if summary == nil {
		return nil // experiment has no recorded form (context, soak)
	}
	all := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &all); err != nil {
			return fmt.Errorf("existing file is not a JSON object: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(summary)
	if err != nil {
		return err
	}
	all[name] = enc
	out, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
