// mystore-server runs one MyStore storage node: the local document store,
// the NWR coordinator, and the gossip endpoint, served over TCP.
//
// Start a seed node, then point further nodes at it:
//
//	mystore-server -addr 10.0.0.1:19870 -seeds 10.0.0.1:19870 -data /var/lib/mystore
//	mystore-server -addr 10.0.0.2:19870 -seeds 10.0.0.1:19870 -data /var/lib/mystore
//
// The node serves until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mystore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:19870", "address to listen on")
	seeds := flag.String("seeds", "", "comma-separated seed node addresses (include this node's address to make it a seed)")
	dataDir := flag.String("data", "", "persistence directory (empty = in-memory)")
	durable := flag.Bool("durable", false, "fsync every write before acknowledging (group-committed)")
	engine := flag.String("engine", "", `storage engine: "map" (in-memory, default) or "lsm" (persistent SSTables, needs -data)`)
	memtable := flag.Int64("memtable", 0, "lsm memtable budget in bytes before flushing to an SSTable (0 = default 4 MiB)")
	weight := flag.Int("weight", 1, "capacity weight (scales virtual nodes)")
	n := flag.Int("n", 3, "replication factor N")
	w := flag.Int("w", 2, "write quorum W")
	r := flag.Int("r", 1, "read quorum R")
	gossipEvery := flag.Duration("gossip", time.Second, "gossip interval")
	strongRanges := flag.Int("strong-ranges", 0, "consensus ranges for the CP tier (0 = strong consistency off)")
	strongElection := flag.Duration("strong-election", 0, "consensus election timeout (0 = default 150ms)")
	flag.Parse()

	var seedList []string
	for _, s := range strings.Split(*seeds, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seedList = append(seedList, s)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	node, err := mystore.ListenNode(ctx, *addr, mystore.NodeOptions{
		Seeds:                 seedList,
		Weight:                *weight,
		N:                     *n,
		W:                     *w,
		R:                     *r,
		DataDir:               *dataDir,
		Durable:               *durable,
		StorageEngine:         *engine,
		MemtableBytes:         *memtable,
		StrongRanges:          *strongRanges,
		StrongElectionTimeout: *strongElection,
		GossipInterval:        *gossipEvery,
	})
	if err != nil {
		log.Fatalf("start node: %v", err)
	}
	defer node.Close()
	fmt.Printf("mystore node listening on %s (seeds: %v, NWR=%d/%d/%d)\n",
		node.Addr(), seedList, *n, *w, *r)

	<-ctx.Done()
	fmt.Println("shutting down")
}
