// mystore-gateway serves the RESTful front end of paper Fig 1 over a
// running MyStore cluster: GET/POST/DELETE on /data/{key}, an LRU cache
// tier, a logical-worker pool, and optional URI-signature authentication.
//
//	mystore-gateway -listen :8080 -nodes 10.0.0.1:19870,10.0.0.2:19870
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mystore"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	nodes := flag.String("nodes", "127.0.0.1:19870", "comma-separated storage node addresses")
	cacheServers := flag.Int("cache-servers", 4, "cache servers (0 disables the tier)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "total cache capacity in bytes")
	workers := flag.Int("workers", 32, "logical worker processes")
	authUsers := flag.String("auth-users", "", "comma-separated users to enable signatures for (empty disables auth)")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline propagated to the storage nodes")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	slowOp := flag.Duration("slow-op", time.Second, "traces at least this long go to the slow-op log (0 disables the log)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	var nodeList []string
	for _, s := range strings.Split(*nodes, ",") {
		if s = strings.TrimSpace(s); s != "" {
			nodeList = append(nodeList, s)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	client, err := mystore.Connect(ctx, nodeList, mystore.ClientOptions{AutoRetry: true})
	cancel()
	if err != nil {
		log.Fatalf("connect to cluster: %v", err)
	}

	opts := mystore.GatewayOptions{
		CacheServers:   *cacheServers,
		CacheBytes:     *cacheBytes,
		Workers:        *workers,
		RequestTimeout: *requestTimeout,
		Metrics:        mystore.NewMetricsRegistry(),
		Trace:          mystore.NewTraceCollector(*slowOp),
		EnablePprof:    *pprofOn,
	}
	if *authUsers != "" {
		db := mystore.NewTokenDB()
		for _, user := range strings.Split(*authUsers, ",") {
			user = strings.TrimSpace(user)
			if user == "" {
				continue
			}
			secret, err := db.Register(user)
			if err != nil {
				log.Fatalf("register %s: %v", user, err)
			}
			// Secrets are shared with users out of band; print once at boot.
			fmt.Printf("user %s secret %s\n", user, secret)
		}
		opts.Auth = db
	}
	gw := mystore.NewGateway(mystore.ClusterBackend{Client: client}, opts)
	defer gw.Close()

	// A configured server rather than http.ListenAndServe: header and body
	// read deadlines bound slow-loris clients, the write deadline leaves room
	// for the request timeout plus response transmission, and idle keep-alive
	// connections are reaped.
	writeTimeout := 30 * time.Second
	if *requestTimeout > 0 {
		writeTimeout += *requestTimeout
	}
	srv := &http.Server{
		Addr:              *listen,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	fmt.Printf("gateway on %s -> cluster %v (cache: %d servers)\n", *listen, nodeList, *cacheServers)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish within
	// the grace period, then exit.
	fmt.Println("draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
