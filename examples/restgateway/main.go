// REST gateway: the full MyStore stack of paper Fig 1 over real HTTP —
// RESTful user interface, URI-signature authentication (Fig 2), logical
// worker pool, LRU cache tier, and the storage cluster behind it all.
//
//	go run ./examples/restgateway
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"mystore"
	"mystore/internal/auth"
)

func main() {
	// Storage cluster.
	cl, err := mystore.StartCluster(mystore.ClusterOptions{Nodes: 5})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		log.Fatalf("connect: %v", err)
	}

	// Gateway with auth and a 2-server cache tier.
	tokens := mystore.NewTokenDB()
	secret, err := tokens.Register("veepalms-frontend")
	if err != nil {
		log.Fatalf("register: %v", err)
	}
	gw := mystore.NewGateway(mystore.ClusterBackend{Client: client}, mystore.GatewayOptions{
		CacheServers: 2,
		CacheBytes:   32 << 20,
		Auth:         tokens,
		Workers:      8,
	})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	fmt.Println("gateway listening at", srv.URL)

	// An unsigned request is refused: RESTful interfaces are stateless, so
	// authorization rides on the URI signature.
	resp, err := http.Get(srv.URL + "/data/secret-scene")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("unsigned GET -> %d %s\n", resp.StatusCode, http.StatusText(resp.StatusCode))

	// The signing flow of Fig 2: fetch a TOKEN, digest (token, URI,
	// secret) with MD5, attach both to the request URI.
	sign := func(uri string) string {
		resp, err := http.Get(srv.URL + "/token?user=veepalms-frontend")
		if err != nil {
			log.Fatal(err)
		}
		tok, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		authorized, err := auth.AuthorizeURI(uri, string(tok), secret)
		if err != nil {
			log.Fatal(err)
		}
		return authorized
	}

	// Signed POST, then signed GETs showing the cache tier at work.
	resp, err = http.Post(srv.URL+sign("/data/secret-scene"), "application/octet-stream",
		strings.NewReader(`<scene discipline="chemistry"/>`))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("signed POST -> %d\n", resp.StatusCode)

	for i := 0; i < 3; i++ {
		start := time.Now()
		resp, err := http.Get(srv.URL + sign("/data/secret-scene"))
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("signed GET #%d -> %d, X-Cache=%s, %d bytes, %v\n",
			i+1, resp.StatusCode, resp.Header.Get("X-Cache"), len(body),
			time.Since(start).Round(time.Microsecond))
	}

	// POST without a key: the gateway creates the item and returns the key.
	resp, err = http.Post(srv.URL+sign("/data/"), "application/octet-stream",
		strings.NewReader("anonymous payload"))
	if err != nil {
		log.Fatal(err)
	}
	key, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("keyless POST -> %d, generated key %s\n", resp.StatusCode, key)

	// Replays are rejected: tokens are single-use.
	uri := sign("/data/secret-scene")
	resp, _ = http.Get(srv.URL + uri)
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + uri)
	resp.Body.Close()
	fmt.Printf("token replay -> %d %s\n", resp.StatusCode, http.StatusText(resp.StatusCode))

	st := gw.Stats()
	fmt.Printf("gateway stats: %d requests, %d cache hits, %d misses, %d errors\n",
		st.Requests, st.CacheHits, st.CacheMisses, st.Errors)
	cs := gw.Cache.Stats()
	fmt.Printf("cache tier: %d items, %d bytes\n", cs.Items, cs.UsedBytes)
}
