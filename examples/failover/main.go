// Failover: watch MyStore's failure machinery work (paper §5.2.4).
//
// The example breaks a node mid-stream and shows (1) writes staying
// available through sloppy quorum + hinted handoff, (2) the hint writeback
// when the node returns, and then (3) a permanent breakdown: seed-confirmed
// long failure, ring shrink, and proactive re-replication restoring N
// copies of every record.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mystore"
)

func main() {
	cl, err := mystore.StartCluster(mystore.ClusterOptions{Nodes: 5, GossipInterval: 50 * time.Millisecond})
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	ctx := context.Background()

	put := func(n int, prefix string) (ok, failed int) {
		for i := 0; i < n; i++ {
			if err := client.Put(ctx, fmt.Sprintf("%s-%04d", prefix, i), []byte("payload")); err != nil {
				failed++
			} else {
				ok++
			}
		}
		return
	}
	replicasOf := func(prefix string, n int) (total int) {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("%s-%04d", prefix, i)
			for _, node := range cl.Nodes() {
				if _, found, _ := node.Coordinator().GetLocal(key); found {
					total++
				}
			}
		}
		return
	}
	hintCount := func() (total int) {
		for _, node := range cl.Nodes() {
			total += node.Coordinator().HintCount()
		}
		return
	}

	// ---- Phase 1: healthy baseline ----
	ok, failed := put(100, "base")
	fmt.Printf("healthy: %d puts ok, %d failed, %d/300 replicas\n", ok, failed, replicasOf("base", 100))

	// ---- Phase 2: short failure ----
	fmt.Println("\n>>> node 3 suffers a short failure (network exception)")
	cl.StopNode(3)
	time.Sleep(300 * time.Millisecond) // let the failure detector notice
	ok, failed = put(100, "short")
	fmt.Printf("during outage: %d puts ok, %d failed (sloppy quorum kept writes available)\n", ok, failed)
	fmt.Printf("hints parked for the down node: %d\n", hintCount())

	fmt.Println(">>> node 3 recovers")
	cl.RestartNode(3)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && hintCount() > 0 {
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("hints after writeback: %d; replicas %d/300\n", hintCount(), replicasOf("short", 100))

	// ---- Phase 3: long failure ----
	fmt.Println("\n>>> node 4 breaks down permanently")
	cl.StopNode(4)
	// Wait for the seed to confirm the long failure and for survivors to
	// re-replicate (gossip LongFailAfter = 10 intervals).
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		removedEverywhere := true
		for i, node := range cl.Nodes() {
			if i == 4 {
				continue
			}
			if node.Ring().Contains(cl.Addrs()[4]) {
				removedEverywhere = false
				break
			}
		}
		if removedEverywhere {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Println("seed confirmed the long failure; node 4 removed from every ring")
	// Give rebalancing a moment, then census replicas among survivors.
	time.Sleep(time.Second)
	total := 0
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("base-%04d", i)
		for j, node := range cl.Nodes() {
			if j == 4 {
				continue
			}
			if _, found, _ := node.Coordinator().GetLocal(key); found {
				total++
			}
		}
	}
	fmt.Printf("replicas of the original data among 4 survivors: %d/300 (re-replication restored N=3)\n", total)

	// Reads and writes remain healthy on the shrunken cluster.
	ok, failed = put(50, "after")
	misses := 0
	for i := 0; i < 100; i++ {
		if _, err := client.Get(ctx, fmt.Sprintf("base-%04d", i)); err != nil {
			misses++
		}
	}
	fmt.Printf("after breakdown: %d puts ok %d failed; %d read misses out of 100\n", ok, failed, misses)
}
