// Large files: the paper's §7 future work implemented — segmentation of
// large video files into replicated chunks with a checksummed manifest —
// plus the anti-entropy repair that heals replicas behind the scenes.
//
//	go run ./examples/largefiles
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"mystore"
)

func main() {
	cl, err := mystore.StartCluster(mystore.ClusterOptions{Nodes: 5, GossipInterval: 50 * time.Millisecond})
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	ctx := context.Background()

	// A 12 MiB "guideline video".
	video := make([]byte, 12<<20)
	rand.New(rand.NewSource(1)).Read(video) //nolint:errcheck

	start := time.Now()
	m, err := mystore.PutLarge(ctx, client, "videos/chemistry-lab-intro", bytes.NewReader(video),
		mystore.LargeObjectConfig{ChunkSize: 1 << 20, Concurrency: 8})
	if err != nil {
		log.Fatalf("PutLarge: %v", err)
	}
	fmt.Printf("uploaded %d bytes as %d chunks of %d in %v (md5 %s)\n",
		m.Size, m.Chunks, m.ChunkSize, time.Since(start).Round(time.Millisecond), m.MD5[:12])

	// Chunks spread across the whole cluster, not one replica set.
	fmt.Println("records per node after upload:")
	for i, n := range cl.Nodes() {
		fmt.Printf("  node-%d: %d\n", i, n.Store().C("records").Len())
	}

	// Streaming download with checksum verification.
	var sink bytes.Buffer
	start = time.Now()
	if _, err := mystore.GetLargeTo(ctx, client, "videos/chemistry-lab-intro", &sink); err != nil {
		log.Fatalf("GetLargeTo: %v", err)
	}
	fmt.Printf("downloaded %d bytes in %v, verified\n", sink.Len(), time.Since(start).Round(time.Millisecond))
	if !bytes.Equal(sink.Bytes(), video) {
		log.Fatal("payload mismatch")
	}

	// Node loss: chunks stay available through their independent replicas.
	cl.StopNode(2)
	if _, err := mystore.GetLarge(ctx, client, "videos/chemistry-lab-intro"); err != nil {
		log.Fatalf("GetLarge with a node down: %v", err)
	}
	fmt.Println("download still succeeds with node 2 down")
	cl.RestartNode(2)

	// Anti-entropy: silently wipe one node's replicas, then let the
	// background digests repair it without any read touching the keys.
	victim := cl.Nodes()[3]
	coll := victim.Store().C("records")
	before := coll.Len()
	for {
		all, _ := coll.Find(nil, mystore.FindOptions{})
		if len(all) == 0 {
			break
		}
		for _, d := range all {
			id, _ := d.Get("_id")
			coll.Delete(id) //nolint:errcheck
		}
	}
	fmt.Printf("wiped node 3 (%d replicas lost); waiting for anti-entropy...\n", before)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range cl.Nodes() {
			n.AntiEntropyRound(ctx)
		}
		if coll.Len() >= before*8/10 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("node 3 restored to %d replicas by anti-entropy\n", coll.Len())

	// Cleanup removes manifest and every chunk.
	if err := mystore.DeleteLarge(ctx, client, "videos/chemistry-lab-intro"); err != nil {
		log.Fatalf("DeleteLarge: %v", err)
	}
	if _, err := mystore.StatLarge(ctx, client, "videos/chemistry-lab-intro"); err != nil {
		fmt.Println("object deleted:", err)
	}
}
