// VeePalms: the workload that motivated MyStore (paper §1, §6) — a
// multi-discipline virtual-experiment education platform storing XML
// experiment components and scenes, guideline videos and experiment
// reports, serving tens of thousands of concurrent students.
//
// The example loads a synthetic VeePalms content library, runs the
// platform's characteristic queries, and then simulates a busy lab session
// with concurrent student traffic.
//
//	go run ./examples/veepalms
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"mystore"
)

type asset struct {
	key        string
	kind       string // component | scene | video | report
	discipline string
	size       int
}

func main() {
	cl, err := mystore.StartCluster(mystore.ClusterOptions{Nodes: 5})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	ctx := context.Background()

	// ---- Load the content library ----
	disciplines := []string{"physics", "chemistry", "biology", "electronics"}
	kinds := []struct {
		name string
		size int
	}{
		{"component", 4 << 10}, // XML experiment components
		{"scene", 60 << 10},    // XML scenes
		{"video", 2 << 20},     // guideline videos
		{"report", 24 << 10},   // experiment reports (PDF/DOC)
	}
	var assets []asset
	rng := rand.New(rand.NewSource(1))
	for d, discipline := range disciplines {
		for k, kind := range kinds {
			for i := 0; i < 12; i++ {
				a := asset{
					key:        fmt.Sprintf("%s/%s/%03d", discipline, kind.name, i),
					kind:       kind.name,
					discipline: discipline,
					size:       kind.size + rng.Intn(kind.size/2+1),
				}
				assets = append(assets, a)
				doc := mystore.Document{
					{Key: "kind", Value: a.kind},
					{Key: "discipline", Value: a.discipline},
					{Key: "bytes", Value: int64(a.size)},
					{Key: "course", Value: fmt.Sprintf("C%d%d", d+1, k+1)},
					{Key: "payload", Value: make([]byte, a.size)},
				}
				if err := client.PutDoc(ctx, a.key, doc); err != nil {
					log.Fatalf("load %s: %v", a.key, err)
				}
			}
		}
	}
	fmt.Printf("loaded %d assets across %d disciplines\n", len(assets), len(disciplines))

	// ---- The platform's characteristic queries ----
	// 1. Everything a course needs, MongoDB-style.
	results, err := client.Query(ctx, mystore.Filter{
		{Key: "doc.discipline", Value: "physics"},
		{Key: "doc.kind", Value: mystore.Document{{Key: "$in", Value: mystore.A{"component", "scene"}}}},
	}, mystore.FindOptions{Sort: []mystore.SortField{{Field: "self-key"}}})
	if err != nil {
		log.Fatalf("course query: %v", err)
	}
	fmt.Printf("physics components+scenes: %d\n", len(results))

	// 2. Large videos, for the future-work segmentation planning.
	results, err = client.Query(ctx, mystore.Filter{
		{Key: "doc.kind", Value: "video"},
		{Key: "doc.bytes", Value: mystore.Document{{Key: "$gt", Value: int64(2 << 20)}}},
	}, mystore.FindOptions{})
	if err != nil {
		log.Fatalf("video query: %v", err)
	}
	fmt.Printf("videos > 2 MiB: %d\n", len(results))

	// 3. Regex over the keyspace — a query Dynamo-style stores cannot do.
	results, err = client.Query(ctx, mystore.Filter{
		{Key: "self-key", Value: mystore.Document{{Key: "$regex", Value: "^electronics/scene/"}}},
	}, mystore.FindOptions{Limit: 5})
	if err != nil {
		log.Fatalf("regex query: %v", err)
	}
	fmt.Printf("electronics scenes (first 5): %d\n", len(results))

	// ---- A busy lab session ----
	// Students read scenes and components, occasionally submit reports.
	const students = 40
	const actionsPerStudent = 20
	start := time.Now()
	var wg sync.WaitGroup
	var reads, writes, failures int64
	var mu sync.Mutex
	for s := 0; s < students; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < actionsPerStudent; i++ {
				if srng.Intn(10) < 8 {
					a := assets[srng.Intn(len(assets))]
					if _, err := client.Get(ctx, a.key); err != nil {
						mu.Lock()
						failures++
						mu.Unlock()
						continue
					}
					mu.Lock()
					reads++
					mu.Unlock()
				} else {
					key := fmt.Sprintf("submissions/s%02d/r%02d", s, i)
					report := mystore.Document{
						{Key: "kind", Value: "submission"},
						{Key: "student", Value: fmt.Sprintf("s%02d", s)},
						{Key: "payload", Value: make([]byte, 8<<10)},
					}
					if err := client.PutDoc(ctx, key, report); err != nil {
						mu.Lock()
						failures++
						mu.Unlock()
						continue
					}
					mu.Lock()
					writes++
					mu.Unlock()
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("lab session: %d reads, %d writes, %d failures in %v (%.0f req/s)\n",
		reads, writes, failures, elapsed.Round(time.Millisecond),
		float64(reads+writes)/elapsed.Seconds())

	// Grade submissions are queryable immediately.
	subs, err := client.Query(ctx, mystore.Filter{
		{Key: "doc.kind", Value: "submission"},
	}, mystore.FindOptions{})
	if err != nil {
		log.Fatalf("submission query: %v", err)
	}
	fmt.Printf("submissions stored: %d\n", len(subs))
}
