// Quickstart: boot an in-process MyStore cluster, store and read
// unstructured data, run a MongoDB-style query, and inspect replication.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mystore"
)

func main() {
	// A 5-node cluster with the paper's (N, W, R) = (3, 2, 1): one seed
	// node and four normal nodes, exactly Fig 10's topology.
	cl, err := mystore.StartCluster(mystore.ClusterOptions{Nodes: 5, N: 3, W: 2, R: 1})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()

	client, err := cl.Client()
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	ctx := context.Background()

	// Raw unstructured data: the paper's running example is an XML
	// experiment component.
	if err := client.Put(ctx, "Resistor5", []byte(`<component type="resistor" ohms="5"/>`)); err != nil {
		log.Fatalf("put: %v", err)
	}
	val, err := client.Get(ctx, "Resistor5")
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("Resistor5 = %s\n", val)

	// Structured documents: store BSON and query it with operators —
	// the capability MyStore keeps from MongoDB.
	for i := 0; i < 10; i++ {
		doc := mystore.Document{
			{Key: "kind", Value: []string{"scene", "video"}[i%2]},
			{Key: "bytes", Value: int64(1000 * (i + 1))},
		}
		if err := client.PutDoc(ctx, fmt.Sprintf("asset-%02d", i), doc); err != nil {
			log.Fatalf("putdoc: %v", err)
		}
	}
	results, err := client.Query(ctx, mystore.Filter{
		{Key: "doc.kind", Value: "scene"},
		{Key: "doc.bytes", Value: mystore.Document{{Key: "$gte", Value: int64(5000)}}},
	}, mystore.FindOptions{Sort: []mystore.SortField{{Field: "self-key"}}})
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("scenes >= 5000 bytes: %d matches\n", len(results))
	for _, r := range results {
		b, _ := r.Doc.Get("bytes")
		fmt.Printf("  %s  bytes=%v\n", r.Key, b)
	}

	// Deletes are tombstones; the key disappears from reads.
	if err := client.Delete(ctx, "Resistor5"); err != nil {
		log.Fatalf("delete: %v", err)
	}
	if _, err := client.Get(ctx, "Resistor5"); err != nil {
		fmt.Println("Resistor5 deleted:", err)
	}

	// Each record was replicated to N=3 of the 5 nodes.
	fmt.Println("replicas per node:")
	for i, n := range cl.Nodes() {
		fmt.Printf("  node-%d: %d records\n", i, n.Store().C("records").Len())
	}
}
